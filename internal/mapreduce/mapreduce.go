// Package mapreduce is a hand-rolled MapReduce engine with the semantics
// DOD relies on: independent map tasks over input splits, a byte-level
// shuffle that partitions and groups intermediate records by key, and
// independent reduce tasks. There is no synchronization between tasks of
// the same phase, matching the shared-nothing execution model of Sec. I.
//
// The engine is deliberately faithful where it matters for the paper:
//
//   - Intermediate records are real serialized bytes, so shuffle volume —
//     the communication cost the single-pass framework minimizes — is
//     measured, not estimated.
//   - Per-task wall times and per-task counters are recorded, so experiments
//     can replay them through internal/cluster to obtain the makespan of a
//     simulated 40-node cluster.
//   - Task attempts can fail (injected, seeded) and are retried with
//     exponential backoff, exercising the fault-tolerant execution
//     MapReduce platforms provide.
//
// Task execution is pluggable: Config.Executor runs individual task
// attempts, defaulting to the in-process executor. The distributed runtime
// (internal/dist) substitutes an executor that ships tasks to remote
// workers over the network; the driver keeps owning scheduling, retries,
// the shuffle, and result assembly either way.
//
// Keys are uint64 (DOD keys records by grid-cell / partition ID, Fig. 2);
// values are opaque byte slices.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"dod/internal/obs"
	"dod/internal/retry"
)

// Pair is one intermediate or output record.
type Pair struct {
	Key   uint64
	Value []byte
}

// Split is one unit of map input (typically one DFS block). Replicas
// optionally lists the simulated nodes holding the block locally, feeding
// data-locality-aware scheduling in the cluster simulator.
type Split struct {
	Name     string
	Data     []byte
	Replicas []int
}

// Group is one reduce key group: a key and every value shuffled to it.
type Group struct {
	Key    uint64
	Values [][]byte
}

// Emit is the record-output callback handed to map and reduce functions.
type Emit func(key uint64, value []byte)

// Mapper processes one input split.
type Mapper interface {
	Map(ctx *TaskContext, split Split, emit Emit) error
}

// Reducer processes one key group. Values arrive in arbitrary order within
// the group, as in Hadoop.
type Reducer interface {
	Reduce(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(ctx *TaskContext, split Split, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, split Split, emit Emit) error {
	return f(ctx, split, emit)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
	return f(ctx, key, values, emit)
}

// Partitioner routes an intermediate key to one of n reduce tasks. DOD
// installs a custom partitioner built from the DMT allocation plan (Step 3
// of Sec. V-A); the default is key % n.
type Partitioner func(key uint64, numReducers int) int

// DefaultPartitioner hashes keys to reducers by modulo.
func DefaultPartitioner(key uint64, numReducers int) int {
	return int(key % uint64(numReducers))
}

// MapTask is one map task attempt handed to an Executor.
type MapTask struct {
	TaskID      int
	Attempt     int
	Split       Split
	NumReducers int
}

// MapResult is a successful map attempt: the task's output partitioned
// into per-reducer buckets (post-combiner), plus its execution metric.
type MapResult struct {
	Buckets [][]Pair
	Metric  TaskMetric
	// Spans are trace spans recorded while the task ran. The in-process
	// executor records directly onto the job trace and leaves this nil;
	// remote executors ship spans back here and the driver folds them in.
	Spans []obs.Span
}

// ReduceTask is one reduce task attempt handed to an Executor.
type ReduceTask struct {
	TaskID  int
	Attempt int
	Groups  []Group
}

// ReduceResult is a successful reduce attempt.
type ReduceResult struct {
	Output []Pair
	Metric TaskMetric
	Spans  []obs.Span
}

// Executor runs individual task attempts. The default executor runs them
// in-process on the calling goroutine; the distributed runtime substitutes
// one that ships tasks to remote workers. An executor must be safe for
// concurrent use: the driver invokes it from its worker pool.
//
// An executor owns the infrastructure of one attempt — where it runs and
// how its output gets back. Retry policy stays with the driver: a failed
// attempt is surfaced as an error, and the driver re-invokes the executor
// (with backoff) when the error is retryable.
type Executor interface {
	ExecMap(ctx context.Context, task MapTask) (*MapResult, error)
	ExecReduce(ctx context.Context, task ReduceTask) (*ReduceResult, error)
}

// Config controls one job execution.
type Config struct {
	NumReducers int         // reduce task count; must be >= 1
	Parallelism int         // concurrent task goroutines; default GOMAXPROCS
	Partitioner Partitioner // default DefaultPartitioner

	// Executor runs task attempts; default the in-process executor.
	Executor Executor

	// Trace, when set, receives spans recorded by task user code (via
	// TaskContext.Trace) and spans shipped back by remote executors.
	Trace *obs.Trace

	// Combiner, when set, runs map-side over each map task's output before
	// the shuffle, exactly like Hadoop's combiner: values of equal keys
	// emitted by one task are grouped and reduced locally, cutting shuffle
	// volume. It must be algebraically safe to apply zero or more times
	// (associative, commutative aggregation with idempotent re-reduction).
	Combiner Reducer

	// Failure injection: each task attempt fails with this probability
	// (before its outputs are committed, as in Hadoop's task model).
	FailureRate float64
	MaxAttempts int // attempts per task before the job fails; default 4
	// RetryBackoff is the base delay before re-running a failed attempt,
	// growing exponentially per attempt with full jitter (capped at
	// 100x; see internal/retry). Zero retries immediately — the default,
	// keeping injected-failure tests fast; the distributed engine sets a
	// real backoff.
	RetryBackoff time.Duration
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.NumReducers < 1 {
		c.NumReducers = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Partitioner == nil {
		c.Partitioner = DefaultPartitioner
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 4
	}
	return c
}

// TaskContext carries per-task identity, counters, and the span sink into
// user code.
type TaskContext struct {
	Phase   string // "map" or "reduce"
	TaskID  int
	Attempt int

	// Trace receives spans recorded by user code ("partition.detect", ...).
	// It may be the job's trace (in-process execution) or a per-task trace
	// whose spans are shipped back over the wire (remote execution). A nil
	// Trace is a valid no-op sink.
	Trace *obs.Trace

	mu       sync.Mutex
	counters map[string]int64
}

// Inc adds delta to the named per-task counter. Counters are aggregated
// into TaskMetric.Counters and into job-level totals.
func (tc *TaskContext) Inc(name string, delta int64) {
	tc.mu.Lock()
	if tc.counters == nil {
		tc.counters = make(map[string]int64)
	}
	tc.counters[name] += delta
	tc.mu.Unlock()
}

// TaskMetric records the execution of one task (its successful attempt).
type TaskMetric struct {
	TaskID     int
	Attempts   int
	Duration   time.Duration
	RecordsIn  int64
	RecordsOut int64
	BytesIn    int64
	BytesOut   int64
	Counters   map[string]int64
}

// Metrics aggregates a job run.
type Metrics struct {
	MapTasks    []TaskMetric
	ReduceTasks []TaskMetric

	ShuffleBytes   int64 // total serialized intermediate bytes moved
	ShuffleRecords int64
	Counters       map[string]int64 // merged task counters

	MapWall     time.Duration // wall-clock of the map phase
	ShuffleWall time.Duration
	ReduceWall  time.Duration
}

// Counter returns the job-level value of a named counter.
func (m *Metrics) Counter(name string) int64 { return m.Counters[name] }

// Result is the output of a job.
type Result struct {
	Output  []Pair // all reduce emissions, ordered by (reducer, key)
	Metrics Metrics
}

// ErrTooManyFailures reports a task that exhausted its attempts.
var ErrTooManyFailures = errors.New("mapreduce: task exceeded max attempts")

// retryable is the marker interface of errors that are safe to re-run on a
// fresh attempt (injected failures, transient infrastructure errors).
type retryable interface{ Retryable() bool }

// Retryable marks err as safe to retry on another attempt. Executors wrap
// transient infrastructure failures with it so the driver's retry loop can
// distinguish them from deterministic user errors, which fail the job.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err}
}

type retryableError struct{ err error }

func (e retryableError) Error() string   { return e.err.Error() }
func (e retryableError) Unwrap() error   { return e.err }
func (e retryableError) Retryable() bool { return true }

// IsRetryable reports whether err (or anything it wraps) is marked
// retryable.
func IsRetryable(err error) bool {
	var r retryable
	return errors.As(err, &r) && r.Retryable()
}

// injectedFailure distinguishes injected failures (retryable) from user
// errors (fatal).
type injectedFailure struct{ phase string }

func (e injectedFailure) Error() string   { return "mapreduce: injected " + e.phase + " task failure" }
func (e injectedFailure) Retryable() bool { return true }

// localExecutor runs task attempts in-process on the calling goroutine —
// the engine's historical behavior, now behind the Executor seam.
type localExecutor struct {
	mapper      Mapper
	reducer     Reducer
	combiner    Reducer
	partitioner Partitioner
	trace       *obs.Trace
}

// NewLocalExecutor returns the in-process executor RunContext installs by
// default, built from a job's functions. The worker side of a distributed
// engine reuses it to execute shipped tasks with identical semantics:
// trace receives the spans user code records via TaskContext.Trace.
func NewLocalExecutor(mapper Mapper, reducer Reducer, combiner Reducer, partitioner Partitioner, trace *obs.Trace) Executor {
	if partitioner == nil {
		partitioner = DefaultPartitioner
	}
	return &localExecutor{mapper: mapper, reducer: reducer, combiner: combiner, partitioner: partitioner, trace: trace}
}

func (e *localExecutor) ExecMap(ctx context.Context, task MapTask) (*MapResult, error) {
	tc := &TaskContext{Phase: "map", TaskID: task.TaskID, Attempt: task.Attempt, Trace: e.trace}
	buckets := make([][]Pair, task.NumReducers)
	var out, bytesOut int64
	start := time.Now()
	emit := func(key uint64, value []byte) {
		r := e.partitioner(key, task.NumReducers)
		buckets[r] = append(buckets[r], Pair{Key: key, Value: value})
		out++
		bytesOut += int64(8 + len(value))
	}
	err := e.mapper.Map(tc, task.Split, emit)
	if err == nil && e.combiner != nil {
		buckets, out, bytesOut, err = combine(e.combiner, tc, buckets)
	}
	if err != nil {
		return nil, err
	}
	return &MapResult{
		Buckets: buckets,
		Metric: TaskMetric{
			TaskID: task.TaskID, Attempts: task.Attempt, Duration: time.Since(start),
			RecordsIn: 1, RecordsOut: out,
			BytesIn: int64(len(task.Split.Data)), BytesOut: bytesOut,
			Counters: tc.counters,
		},
	}, nil
}

func (e *localExecutor) ExecReduce(ctx context.Context, task ReduceTask) (*ReduceResult, error) {
	tc := &TaskContext{Phase: "reduce", TaskID: task.TaskID, Attempt: task.Attempt, Trace: e.trace}
	var output []Pair
	var in, out, bytesIn, bytesOut int64
	start := time.Now()
	emit := func(key uint64, value []byte) {
		output = append(output, Pair{Key: key, Value: value})
		out++
		bytesOut += int64(8 + len(value))
	}
	for _, g := range task.Groups {
		// Cancellation is checked between key groups, so a long reduce
		// task stops at the next partition boundary instead of running to
		// completion.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		in += int64(len(g.Values))
		for _, v := range g.Values {
			bytesIn += int64(8 + len(v))
		}
		if err := e.reducer.Reduce(tc, g.Key, g.Values, emit); err != nil {
			return nil, err
		}
	}
	return &ReduceResult{
		Output: output,
		Metric: TaskMetric{
			TaskID: task.TaskID, Attempts: task.Attempt, Duration: time.Since(start),
			RecordsIn: in, RecordsOut: out,
			BytesIn: bytesIn, BytesOut: bytesOut,
			Counters: tc.counters,
		},
	}, nil
}

// Run executes one MapReduce job over the given splits without a
// cancellation context; see RunContext.
func Run(cfg Config, splits []Split, mapper Mapper, reducer Reducer) (*Result, error) {
	return RunContext(context.Background(), cfg, splits, mapper, reducer)
}

// RunContext executes one MapReduce job over the given splits with
// cooperative cancellation: the worker pools stop dispatching tasks and
// reduce tasks stop between key groups once ctx is done, and the job
// returns ctx.Err(). A task already inside user map/reduce code finishes
// its current group first — cancellation is prompt at group granularity,
// which for the detection job means per partition.
func RunContext(jobCtx context.Context, cfg Config, splits []Split, mapper Mapper, reducer Reducer) (*Result, error) {
	cfg = cfg.withDefaults()
	exec := cfg.Executor
	if exec == nil {
		exec = NewLocalExecutor(mapper, reducer, cfg.Combiner, cfg.Partitioner, cfg.Trace)
	}

	// Per-task seeded RNGs make failure injection deterministic regardless
	// of scheduling order. The roll happens driver-side after the attempt
	// ran, before its outputs commit — mirroring Hadoop's task model and
	// applying uniformly to local and remote executors.
	failRoll := func(phase string, task, attempt int) bool {
		if cfg.FailureRate <= 0 {
			return false
		}
		h := cfg.Seed*1000003 + int64(task)*31 + int64(attempt)*7
		if phase == "reduce" {
			h += 500009
		}
		return rand.New(rand.NewSource(h)).Float64() < cfg.FailureRate
	}

	// backoff sleeps before retrying a failed attempt on the shared retry
	// policy (capped exponential, full jitter), interruptible by job
	// cancellation. Jitter is seeded per job so failure-injection tests
	// stay reproducible.
	retryPol := retry.Policy{Base: cfg.RetryBackoff, Max: 100 * cfg.RetryBackoff, Jitter: true}
	var (
		retryMu  sync.Mutex
		retryRng = rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))
	)
	backoff := func(attempt int) error {
		if cfg.RetryBackoff <= 0 {
			return nil
		}
		retryMu.Lock()
		d := retryPol.Delay(attempt, retryRng)
		retryMu.Unlock()
		return retry.Sleep(jobCtx, d)
	}

	// ---- Map phase ----
	mapStart := time.Now()
	mapOuts := make([]*MapResult, len(splits))
	if err := runTasks(jobCtx, cfg.Parallelism, len(splits), func(i int) error {
		var lastErr error
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			res, err := exec.ExecMap(jobCtx, MapTask{
				TaskID: i, Attempt: attempt, Split: splits[i], NumReducers: cfg.NumReducers,
			})
			if err == nil && failRoll("map", i, attempt) {
				err = injectedFailure{phase: "map"}
			}
			if err == nil {
				res.Metric.TaskID = i
				res.Metric.Attempts = attempt
				mapOuts[i] = res
				addSpans(cfg.Trace, res.Spans)
				return nil
			}
			lastErr = err
			if !IsRetryable(err) {
				return fmt.Errorf("map task %d: %w", i, err)
			}
			if attempt < cfg.MaxAttempts {
				if err := backoff(attempt); err != nil {
					return err
				}
			}
		}
		return fmt.Errorf("map task %d: %w: %v", i, ErrTooManyFailures, lastErr)
	}); err != nil {
		return nil, err
	}
	mapWall := time.Since(mapStart)

	// ---- Shuffle: regroup per-reducer, sort by key, group values ----
	shuffleStart := time.Now()
	perReducer := make([][]Pair, cfg.NumReducers)
	var shuffleBytes, shuffleRecords int64
	for _, mo := range mapOuts {
		for r, bucket := range mo.Buckets {
			perReducer[r] = append(perReducer[r], bucket...)
			for _, p := range bucket {
				shuffleBytes += int64(8 + len(p.Value))
			}
			shuffleRecords += int64(len(bucket))
		}
	}
	grouped := make([][]Group, cfg.NumReducers)
	if err := runTasks(jobCtx, cfg.Parallelism, cfg.NumReducers, func(r int) error {
		pairs := perReducer[r]
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
		var gs []Group
		for i := 0; i < len(pairs); {
			j := i
			for j < len(pairs) && pairs[j].Key == pairs[i].Key {
				j++
			}
			values := make([][]byte, 0, j-i)
			for _, p := range pairs[i:j] {
				values = append(values, p.Value)
			}
			gs = append(gs, Group{Key: pairs[i].Key, Values: values})
			i = j
		}
		grouped[r] = gs
		return nil
	}); err != nil {
		return nil, err
	}
	shuffleWall := time.Since(shuffleStart)

	// ---- Reduce phase ----
	reduceStart := time.Now()
	reduceOuts := make([]*ReduceResult, cfg.NumReducers)
	if err := runTasks(jobCtx, cfg.Parallelism, cfg.NumReducers, func(r int) error {
		var lastErr error
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			res, err := exec.ExecReduce(jobCtx, ReduceTask{
				TaskID: r, Attempt: attempt, Groups: grouped[r],
			})
			if err == nil && failRoll("reduce", r, attempt) {
				err = injectedFailure{phase: "reduce"}
			}
			if err == nil {
				res.Metric.TaskID = r
				res.Metric.Attempts = attempt
				reduceOuts[r] = res
				addSpans(cfg.Trace, res.Spans)
				return nil
			}
			lastErr = err
			if !IsRetryable(err) {
				return fmt.Errorf("reduce task %d: %w", r, err)
			}
			if attempt < cfg.MaxAttempts {
				if err := backoff(attempt); err != nil {
					return err
				}
			}
		}
		return fmt.Errorf("reduce task %d: %w: %v", r, ErrTooManyFailures, lastErr)
	}); err != nil {
		return nil, err
	}
	reduceWall := time.Since(reduceStart)

	// ---- Assemble result ----
	res := &Result{
		Metrics: Metrics{
			ShuffleBytes:   shuffleBytes,
			ShuffleRecords: shuffleRecords,
			Counters:       make(map[string]int64),
			MapWall:        mapWall,
			ShuffleWall:    shuffleWall,
			ReduceWall:     reduceWall,
		},
	}
	for _, mo := range mapOuts {
		res.Metrics.MapTasks = append(res.Metrics.MapTasks, mo.Metric)
		for k, v := range mo.Metric.Counters {
			res.Metrics.Counters[k] += v
		}
	}
	for _, ro := range reduceOuts {
		res.Metrics.ReduceTasks = append(res.Metrics.ReduceTasks, ro.Metric)
		for k, v := range ro.Metric.Counters {
			res.Metrics.Counters[k] += v
		}
		res.Output = append(res.Output, ro.Output...)
	}
	return res, nil
}

// addSpans folds remotely recorded spans into the job trace.
func addSpans(tr *obs.Trace, spans []obs.Span) {
	if tr == nil {
		return
	}
	for _, s := range spans {
		tr.Add(s.Name, s.Start, s.Duration, s.Attrs...)
	}
}

// combine applies the map-side combiner to each per-reducer bucket,
// grouping equal keys and re-emitting the combined records.
func combine(combiner Reducer, ctx *TaskContext, buckets [][]Pair) (out [][]Pair, records, bytes int64, err error) {
	out = make([][]Pair, len(buckets))
	for r, bucket := range buckets {
		sort.SliceStable(bucket, func(i, j int) bool { return bucket[i].Key < bucket[j].Key })
		var combined []Pair
		emit := func(key uint64, value []byte) {
			combined = append(combined, Pair{Key: key, Value: value})
			records++
			bytes += int64(8 + len(value))
		}
		for i := 0; i < len(bucket); {
			j := i
			for j < len(bucket) && bucket[j].Key == bucket[i].Key {
				j++
			}
			values := make([][]byte, 0, j-i)
			for _, p := range bucket[i:j] {
				values = append(values, p.Value)
			}
			if err := combiner.Reduce(ctx, bucket[i].Key, values, emit); err != nil {
				return nil, 0, 0, fmt.Errorf("combiner: %w", err)
			}
			i = j
		}
		out[r] = combined
	}
	return out, records, bytes, nil
}

// runTasks executes fn(0..n-1) on a bounded worker pool, returning the
// first error. Workers re-check ctx before claiming each task, so a
// cancelled job stops dispatching promptly and returns ctx.Err().
func runTasks(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if n == 0 {
		return ctx.Err()
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
		next    int
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstEr == nil {
					firstEr = ctx.Err()
				}
				if firstEr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
