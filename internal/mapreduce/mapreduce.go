// Package mapreduce is a hand-rolled, in-process MapReduce engine with the
// semantics DOD relies on: independent map tasks over input splits, a
// byte-level shuffle that partitions and groups intermediate records by key,
// and independent reduce tasks. There is no synchronization between tasks of
// the same phase, matching the shared-nothing execution model of Sec. I.
//
// The engine is deliberately faithful where it matters for the paper:
//
//   - Intermediate records are real serialized bytes, so shuffle volume —
//     the communication cost the single-pass framework minimizes — is
//     measured, not estimated.
//   - Per-task wall times and per-task counters are recorded, so experiments
//     can replay them through internal/cluster to obtain the makespan of a
//     simulated 40-node cluster.
//   - Task attempts can fail (injected, seeded) and are retried, exercising
//     the fault-tolerant execution MapReduce platforms provide.
//
// Keys are uint64 (DOD keys records by grid-cell / partition ID, Fig. 2);
// values are opaque byte slices.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Pair is one intermediate or output record.
type Pair struct {
	Key   uint64
	Value []byte
}

// Split is one unit of map input (typically one DFS block). Replicas
// optionally lists the simulated nodes holding the block locally, feeding
// data-locality-aware scheduling in the cluster simulator.
type Split struct {
	Name     string
	Data     []byte
	Replicas []int
}

// Emit is the record-output callback handed to map and reduce functions.
type Emit func(key uint64, value []byte)

// Mapper processes one input split.
type Mapper interface {
	Map(ctx *TaskContext, split Split, emit Emit) error
}

// Reducer processes one key group. Values arrive in arbitrary order within
// the group, as in Hadoop.
type Reducer interface {
	Reduce(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(ctx *TaskContext, split Split, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, split Split, emit Emit) error {
	return f(ctx, split, emit)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
	return f(ctx, key, values, emit)
}

// Partitioner routes an intermediate key to one of n reduce tasks. DOD
// installs a custom partitioner built from the DMT allocation plan (Step 3
// of Sec. V-A); the default is key % n.
type Partitioner func(key uint64, numReducers int) int

// DefaultPartitioner hashes keys to reducers by modulo.
func DefaultPartitioner(key uint64, numReducers int) int {
	return int(key % uint64(numReducers))
}

// Config controls one job execution.
type Config struct {
	NumReducers int         // reduce task count; must be >= 1
	Parallelism int         // concurrent task goroutines; default GOMAXPROCS
	Partitioner Partitioner // default DefaultPartitioner

	// Combiner, when set, runs map-side over each map task's output before
	// the shuffle, exactly like Hadoop's combiner: values of equal keys
	// emitted by one task are grouped and reduced locally, cutting shuffle
	// volume. It must be algebraically safe to apply zero or more times
	// (associative, commutative aggregation with idempotent re-reduction).
	Combiner Reducer

	// Failure injection: each task attempt fails with this probability
	// (before its outputs are committed, as in Hadoop's task model).
	FailureRate float64
	MaxAttempts int // attempts per task before the job fails; default 4
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.NumReducers < 1 {
		c.NumReducers = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Partitioner == nil {
		c.Partitioner = DefaultPartitioner
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 4
	}
	return c
}

// TaskContext carries per-task identity and counters into user code.
type TaskContext struct {
	Phase   string // "map" or "reduce"
	TaskID  int
	Attempt int

	mu       sync.Mutex
	counters map[string]int64
}

// Inc adds delta to the named per-task counter. Counters are aggregated
// into TaskMetric.Counters and into job-level totals.
func (tc *TaskContext) Inc(name string, delta int64) {
	tc.mu.Lock()
	if tc.counters == nil {
		tc.counters = make(map[string]int64)
	}
	tc.counters[name] += delta
	tc.mu.Unlock()
}

// TaskMetric records the execution of one task (its successful attempt).
type TaskMetric struct {
	TaskID     int
	Attempts   int
	Duration   time.Duration
	RecordsIn  int64
	RecordsOut int64
	BytesIn    int64
	BytesOut   int64
	Counters   map[string]int64
}

// Metrics aggregates a job run.
type Metrics struct {
	MapTasks    []TaskMetric
	ReduceTasks []TaskMetric

	ShuffleBytes   int64 // total serialized intermediate bytes moved
	ShuffleRecords int64
	Counters       map[string]int64 // merged task counters

	MapWall     time.Duration // wall-clock of the in-process map phase
	ShuffleWall time.Duration
	ReduceWall  time.Duration
}

// Counter returns the job-level value of a named counter.
func (m *Metrics) Counter(name string) int64 { return m.Counters[name] }

// Result is the output of a job.
type Result struct {
	Output  []Pair // all reduce emissions, ordered by (reducer, key)
	Metrics Metrics
}

// ErrTooManyFailures reports a task that exhausted its attempts.
var ErrTooManyFailures = errors.New("mapreduce: task exceeded max attempts")

// injectedFailure distinguishes injected failures (retryable) from user
// errors (fatal).
type injectedFailure struct{ phase string }

func (e injectedFailure) Error() string { return "mapreduce: injected " + e.phase + " task failure" }

// Run executes one MapReduce job over the given splits without a
// cancellation context; see RunContext.
func Run(cfg Config, splits []Split, mapper Mapper, reducer Reducer) (*Result, error) {
	return RunContext(context.Background(), cfg, splits, mapper, reducer)
}

// RunContext executes one MapReduce job over the given splits with
// cooperative cancellation: the worker pools stop dispatching tasks and
// reduce tasks stop between key groups once ctx is done, and the job
// returns ctx.Err(). A task already inside user map/reduce code finishes
// its current group first — cancellation is prompt at group granularity,
// which for the detection job means per partition.
func RunContext(jobCtx context.Context, cfg Config, splits []Split, mapper Mapper, reducer Reducer) (*Result, error) {
	cfg = cfg.withDefaults()

	// Per-task seeded RNGs make failure injection deterministic regardless
	// of scheduling order.
	failRoll := func(phase string, task, attempt int) bool {
		if cfg.FailureRate <= 0 {
			return false
		}
		h := cfg.Seed*1000003 + int64(task)*31 + int64(attempt)*7
		if phase == "reduce" {
			h += 500009
		}
		return rand.New(rand.NewSource(h)).Float64() < cfg.FailureRate
	}

	// ---- Map phase ----
	mapStart := time.Now()
	type mapOut struct {
		metric  TaskMetric
		buckets [][]Pair // per-reducer
	}
	mapOuts := make([]mapOut, len(splits))
	if err := runTasks(jobCtx, cfg.Parallelism, len(splits), func(i int) error {
		var lastErr error
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			ctx := &TaskContext{Phase: "map", TaskID: i, Attempt: attempt}
			buckets := make([][]Pair, cfg.NumReducers)
			var out, bytesOut int64
			start := time.Now()
			emit := func(key uint64, value []byte) {
				r := cfg.Partitioner(key, cfg.NumReducers)
				buckets[r] = append(buckets[r], Pair{Key: key, Value: value})
				out++
				bytesOut += int64(8 + len(value))
			}
			err := mapper.Map(ctx, splits[i], emit)
			if err == nil && cfg.Combiner != nil {
				buckets, out, bytesOut, err = combine(cfg.Combiner, ctx, buckets)
			}
			if err == nil && failRoll("map", i, attempt) {
				err = injectedFailure{phase: "map"}
			}
			if err == nil {
				mapOuts[i] = mapOut{
					metric: TaskMetric{
						TaskID: i, Attempts: attempt, Duration: time.Since(start),
						RecordsIn: 1, RecordsOut: out,
						BytesIn: int64(len(splits[i].Data)), BytesOut: bytesOut,
						Counters: ctx.counters,
					},
					buckets: buckets,
				}
				return nil
			}
			lastErr = err
			if _, ok := err.(injectedFailure); !ok {
				return fmt.Errorf("map task %d: %w", i, err)
			}
		}
		return fmt.Errorf("map task %d: %w: %v", i, ErrTooManyFailures, lastErr)
	}); err != nil {
		return nil, err
	}
	mapWall := time.Since(mapStart)

	// ---- Shuffle: regroup per-reducer, sort by key, group values ----
	shuffleStart := time.Now()
	perReducer := make([][]Pair, cfg.NumReducers)
	var shuffleBytes, shuffleRecords int64
	for _, mo := range mapOuts {
		for r, bucket := range mo.buckets {
			perReducer[r] = append(perReducer[r], bucket...)
			for _, p := range bucket {
				shuffleBytes += int64(8 + len(p.Value))
			}
			shuffleRecords += int64(len(bucket))
		}
	}
	type group struct {
		key    uint64
		values [][]byte
	}
	grouped := make([][]group, cfg.NumReducers)
	if err := runTasks(jobCtx, cfg.Parallelism, cfg.NumReducers, func(r int) error {
		pairs := perReducer[r]
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
		var gs []group
		for i := 0; i < len(pairs); {
			j := i
			for j < len(pairs) && pairs[j].Key == pairs[i].Key {
				j++
			}
			values := make([][]byte, 0, j-i)
			for _, p := range pairs[i:j] {
				values = append(values, p.Value)
			}
			gs = append(gs, group{key: pairs[i].Key, values: values})
			i = j
		}
		grouped[r] = gs
		return nil
	}); err != nil {
		return nil, err
	}
	shuffleWall := time.Since(shuffleStart)

	// ---- Reduce phase ----
	reduceStart := time.Now()
	type reduceOut struct {
		metric TaskMetric
		output []Pair
	}
	reduceOuts := make([]reduceOut, cfg.NumReducers)
	if err := runTasks(jobCtx, cfg.Parallelism, cfg.NumReducers, func(r int) error {
		var lastErr error
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			ctx := &TaskContext{Phase: "reduce", TaskID: r, Attempt: attempt}
			var output []Pair
			var in, out, bytesIn, bytesOut int64
			start := time.Now()
			emit := func(key uint64, value []byte) {
				output = append(output, Pair{Key: key, Value: value})
				out++
				bytesOut += int64(8 + len(value))
			}
			var err error
			for _, g := range grouped[r] {
				// Cancellation is checked between key groups, so a
				// long reduce task stops at the next partition
				// boundary instead of running to completion.
				if err = jobCtx.Err(); err != nil {
					return err
				}
				in += int64(len(g.values))
				for _, v := range g.values {
					bytesIn += int64(8 + len(v))
				}
				if err = reducer.Reduce(ctx, g.key, g.values, emit); err != nil {
					break
				}
			}
			if err == nil && failRoll("reduce", r, attempt) {
				err = injectedFailure{phase: "reduce"}
			}
			if err == nil {
				reduceOuts[r] = reduceOut{
					metric: TaskMetric{
						TaskID: r, Attempts: attempt, Duration: time.Since(start),
						RecordsIn: in, RecordsOut: out,
						BytesIn: bytesIn, BytesOut: bytesOut,
						Counters: ctx.counters,
					},
					output: output,
				}
				return nil
			}
			lastErr = err
			if _, ok := err.(injectedFailure); !ok {
				return fmt.Errorf("reduce task %d: %w", r, err)
			}
		}
		return fmt.Errorf("reduce task %d: %w: %v", r, ErrTooManyFailures, lastErr)
	}); err != nil {
		return nil, err
	}
	reduceWall := time.Since(reduceStart)

	// ---- Assemble result ----
	res := &Result{
		Metrics: Metrics{
			ShuffleBytes:   shuffleBytes,
			ShuffleRecords: shuffleRecords,
			Counters:       make(map[string]int64),
			MapWall:        mapWall,
			ShuffleWall:    shuffleWall,
			ReduceWall:     reduceWall,
		},
	}
	for _, mo := range mapOuts {
		res.Metrics.MapTasks = append(res.Metrics.MapTasks, mo.metric)
		for k, v := range mo.metric.Counters {
			res.Metrics.Counters[k] += v
		}
	}
	for _, ro := range reduceOuts {
		res.Metrics.ReduceTasks = append(res.Metrics.ReduceTasks, ro.metric)
		for k, v := range ro.metric.Counters {
			res.Metrics.Counters[k] += v
		}
		res.Output = append(res.Output, ro.output...)
	}
	return res, nil
}

// combine applies the map-side combiner to each per-reducer bucket,
// grouping equal keys and re-emitting the combined records.
func combine(combiner Reducer, ctx *TaskContext, buckets [][]Pair) (out [][]Pair, records, bytes int64, err error) {
	out = make([][]Pair, len(buckets))
	for r, bucket := range buckets {
		sort.SliceStable(bucket, func(i, j int) bool { return bucket[i].Key < bucket[j].Key })
		var combined []Pair
		emit := func(key uint64, value []byte) {
			combined = append(combined, Pair{Key: key, Value: value})
			records++
			bytes += int64(8 + len(value))
		}
		for i := 0; i < len(bucket); {
			j := i
			for j < len(bucket) && bucket[j].Key == bucket[i].Key {
				j++
			}
			values := make([][]byte, 0, j-i)
			for _, p := range bucket[i:j] {
				values = append(values, p.Value)
			}
			if err := combiner.Reduce(ctx, bucket[i].Key, values, emit); err != nil {
				return nil, 0, 0, fmt.Errorf("combiner: %w", err)
			}
			i = j
		}
		out[r] = combined
	}
	return out, records, bytes, nil
}

// runTasks executes fn(0..n-1) on a bounded worker pool, returning the
// first error. Workers re-check ctx before claiming each task, so a
// cancelled job stops dispatching promptly and returns ctx.Err().
func runTasks(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if n == 0 {
		return ctx.Err()
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
		next    int
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstEr == nil {
					firstEr = ctx.Err()
				}
				if firstEr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
