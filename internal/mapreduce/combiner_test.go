package mapreduce

import (
	"encoding/binary"
	"errors"
	"testing"
)

// sumMapper emits (word length, 1) for each word.
var sumMapper = MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
	for _, w := range splitWords(string(split.Data)) {
		emit(uint64(len(w)), binary.AppendUvarint(nil, 1))
	}
	return nil
})

// sumReducer sums uvarint-encoded values — safe as both combiner and
// reducer.
var sumReducer = ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
	var total uint64
	for _, v := range values {
		n, read := binary.Uvarint(v)
		if read <= 0 {
			return errors.New("bad value")
		}
		total += n
	}
	emit(key, binary.AppendUvarint(nil, total))
	return nil
})

func splitWords(s string) []string {
	var words []string
	start := -1
	for i, r := range s {
		if r == ' ' || r == '\n' {
			if start >= 0 {
				words = append(words, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		words = append(words, s[start:])
	}
	return words
}

func sumsOf(t *testing.T, res *Result) map[uint64]uint64 {
	t.Helper()
	out := map[uint64]uint64{}
	for _, p := range res.Output {
		n, read := binary.Uvarint(p.Value)
		if read <= 0 {
			t.Fatal("bad output value")
		}
		out[p.Key] += n
	}
	return out
}

func TestCombinerPreservesResult(t *testing.T) {
	splits := wordSplits("a bb a ccc bb a", "bb a bb", "ccc a a")
	plain, err := Run(Config{NumReducers: 3}, splits, sumMapper, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(Config{NumReducers: 3, Combiner: sumReducer}, splits, sumMapper, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	want, got := sumsOf(t, plain), sumsOf(t, combined)
	if len(want) != len(got) {
		t.Fatalf("result sizes differ: %v vs %v", want, got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: combined %d, want %d", k, got[k], v)
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	splits := wordSplits("a a a a a a a a bb bb bb bb", "a a a a bb bb")
	plain, err := Run(Config{NumReducers: 2}, splits, sumMapper, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(Config{NumReducers: 2, Combiner: sumReducer}, splits, sumMapper, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Metrics.ShuffleRecords >= plain.Metrics.ShuffleRecords {
		t.Errorf("combiner did not reduce shuffle: %d vs %d records",
			combined.Metrics.ShuffleRecords, plain.Metrics.ShuffleRecords)
	}
	// Each map task emits at most one record per (key, reducer): 2 tasks × 2
	// keys = 4 records max.
	if combined.Metrics.ShuffleRecords > 4 {
		t.Errorf("combined shuffle records = %d, want <= 4", combined.Metrics.ShuffleRecords)
	}
}

func TestCombinerErrorFailsJob(t *testing.T) {
	boom := errors.New("combiner boom")
	bad := ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
		return boom
	})
	_, err := Run(Config{NumReducers: 1, Combiner: bad}, wordSplits("a b"), sumMapper, sumReducer)
	if !errors.Is(err, boom) {
		t.Errorf("want combiner error, got %v", err)
	}
}

func TestCombinerWithFailureInjection(t *testing.T) {
	splits := wordSplits("a bb a ccc", "bb a bb ccc", "a a bb")
	clean, err := Run(Config{NumReducers: 2, Combiner: sumReducer}, splits, sumMapper, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := Run(Config{NumReducers: 2, Combiner: sumReducer, FailureRate: 0.4, MaxAttempts: 50, Seed: 3},
		splits, sumMapper, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	want, got := sumsOf(t, clean), sumsOf(t, flaky)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: %d vs %d under failures", k, got[k], v)
		}
	}
}
