package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// wordSplits builds splits of whitespace-separated words.
func wordSplits(texts ...string) []Split {
	splits := make([]Split, len(texts))
	for i, tx := range texts {
		splits[i] = Split{Name: fmt.Sprintf("split-%d", i), Data: []byte(tx)}
	}
	return splits
}

// wordLenMapper emits (len(word), word) for each word in the split.
var wordLenMapper = MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
	for _, w := range strings.Fields(string(split.Data)) {
		emit(uint64(len(w)), []byte(w))
	}
	return nil
})

// countReducer emits (key, count-of-values).
var countReducer = ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
	emit(key, []byte(strconv.Itoa(len(values))))
	return nil
})

func runWordCount(t *testing.T, cfg Config) map[uint64]int {
	t.Helper()
	res, err := Run(cfg, wordSplits("a bb ccc bb a", "dddd a bb", "ccc ccc"), wordLenMapper, countReducer)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]int{}
	for _, p := range res.Output {
		n, err := strconv.Atoi(string(p.Value))
		if err != nil {
			t.Fatal(err)
		}
		got[p.Key] += n
	}
	return got
}

func TestWordCountByLength(t *testing.T) {
	want := map[uint64]int{1: 3, 2: 3, 3: 3, 4: 1}
	for _, reducers := range []int{1, 2, 7} {
		got := runWordCount(t, Config{NumReducers: reducers})
		for k, v := range want {
			if got[k] != v {
				t.Errorf("reducers=%d: count[%d] = %d, want %d", reducers, k, got[k], v)
			}
		}
	}
}

func TestGroupingAllValuesSameKeyTogether(t *testing.T) {
	// Each key group must be delivered to exactly one Reduce invocation.
	seen := map[uint64]int{}
	reducer := ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
		seen[key]++
		return nil
	})
	// Single reducer so the map write is race-free.
	_, err := Run(Config{NumReducers: 1}, wordSplits("x y zz zz x"), wordLenMapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %d reduced %d times, want once", k, n)
		}
	}
}

func TestReduceKeysSortedWithinReducer(t *testing.T) {
	var keys []uint64
	reducer := ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
		keys = append(keys, key)
		return nil
	})
	mapper := MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
		for _, k := range []uint64{9, 3, 7, 1, 3, 9, 5} {
			emit(k, nil)
		}
		return nil
	})
	if _, err := Run(Config{NumReducers: 1}, wordSplits("x"), mapper, reducer); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("keys not sorted: %v", keys)
	}
}

func TestCustomPartitioner(t *testing.T) {
	// Route everything to reducer 2 and confirm with per-task metrics.
	cfg := Config{
		NumReducers: 4,
		Partitioner: func(key uint64, n int) int { return 2 },
	}
	res, err := Run(cfg, wordSplits("a bb ccc"), wordLenMapper, countReducer)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range res.Metrics.ReduceTasks {
		if rt.TaskID != 2 && rt.RecordsIn != 0 {
			t.Errorf("reducer %d got %d records, want 0", rt.TaskID, rt.RecordsIn)
		}
		if rt.TaskID == 2 && rt.RecordsIn != 3 {
			t.Errorf("reducer 2 got %d records, want 3", rt.RecordsIn)
		}
	}
}

func TestShuffleMetrics(t *testing.T) {
	res, err := Run(Config{NumReducers: 2}, wordSplits("aa bb"), wordLenMapper, countReducer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ShuffleRecords != 2 {
		t.Errorf("ShuffleRecords = %d, want 2", res.Metrics.ShuffleRecords)
	}
	// 2 records × (8 key bytes + 2 value bytes)
	if res.Metrics.ShuffleBytes != 20 {
		t.Errorf("ShuffleBytes = %d, want 20", res.Metrics.ShuffleBytes)
	}
}

func TestCounters(t *testing.T) {
	mapper := MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
		ctx.Inc("points.scanned", 10)
		return nil
	})
	reducer := ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
		ctx.Inc("comparisons", 5)
		return nil
	})
	// Force at least one key so the reducer runs.
	mapper2 := MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
		if err := mapper.Map(ctx, split, emit); err != nil {
			return err
		}
		emit(1, nil)
		return nil
	})
	res, err := Run(Config{NumReducers: 1}, wordSplits("x", "y", "z"), mapper2, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.Counter("points.scanned"); got != 30 {
		t.Errorf("points.scanned = %d, want 30", got)
	}
	if got := res.Metrics.Counter("comparisons"); got != 5 {
		t.Errorf("comparisons = %d, want 5", got)
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	mapper := MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error { return boom })
	if _, err := Run(Config{NumReducers: 1}, wordSplits("x"), mapper, countReducer); !errors.Is(err, boom) {
		t.Errorf("want boom, got %v", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	reducer := ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error { return boom })
	if _, err := Run(Config{NumReducers: 1}, wordSplits("x y"), wordLenMapper, reducer); !errors.Is(err, boom) {
		t.Errorf("want boom, got %v", err)
	}
}

func TestFailureInjectionRetriesAndSucceeds(t *testing.T) {
	cfg := Config{NumReducers: 2, FailureRate: 0.3, MaxAttempts: 50, Seed: 99}
	got := runWordCount(t, cfg)
	want := map[uint64]int{1: 3, 2: 3, 3: 3, 4: 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("with failures: count[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestFailureInjectionRecordsAttempts(t *testing.T) {
	cfg := Config{NumReducers: 2, FailureRate: 0.5, MaxAttempts: 100, Seed: 7}
	res, err := Run(cfg, wordSplits("a bb", "ccc dddd", "e ff"), wordLenMapper, countReducer)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, mt := range res.Metrics.MapTasks {
		total += mt.Attempts
	}
	for _, rt := range res.Metrics.ReduceTasks {
		total += rt.Attempts
	}
	if total <= len(res.Metrics.MapTasks)+len(res.Metrics.ReduceTasks) {
		t.Error("expected at least one retry at 50% failure rate")
	}
}

func TestFailureExhaustionFailsJob(t *testing.T) {
	cfg := Config{NumReducers: 1, FailureRate: 1.0, MaxAttempts: 3, Seed: 1}
	_, err := Run(cfg, wordSplits("x"), wordLenMapper, countReducer)
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("want ErrTooManyFailures, got %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(Config{NumReducers: 3}, nil, wordLenMapper, countReducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Errorf("output = %v, want empty", res.Output)
	}
	if len(res.Metrics.ReduceTasks) != 3 {
		t.Errorf("reduce tasks = %d, want 3", len(res.Metrics.ReduceTasks))
	}
}

func TestValueBytesPreserved(t *testing.T) {
	payload := []byte{0, 1, 2, 255, 254}
	mapper := MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
		emit(7, payload)
		return nil
	})
	reducer := ReducerFunc(func(ctx *TaskContext, key uint64, values [][]byte, emit Emit) error {
		for _, v := range values {
			emit(key, v)
		}
		return nil
	})
	res, err := Run(Config{NumReducers: 1}, wordSplits("x"), mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || !bytes.Equal(res.Output[0].Value, payload) {
		t.Errorf("output = %v", res.Output)
	}
}

func TestDeterministicOutputAcrossParallelism(t *testing.T) {
	run := func(par int) []Pair {
		res, err := Run(Config{NumReducers: 4, Parallelism: par},
			wordSplits("a bb ccc bb a", "dddd a bb", "ccc ccc"), wordLenMapper, countReducer)
		if err != nil {
			t.Fatal(err)
		}
		out := append([]Pair(nil), res.Output...)
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("output %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManySplitsManyReducers(t *testing.T) {
	var splits []Split
	for i := 0; i < 100; i++ {
		splits = append(splits, Split{Name: fmt.Sprintf("s%d", i), Data: []byte("aa bbb c")})
	}
	got := map[uint64]int{}
	res, err := Run(Config{NumReducers: 16}, splits, wordLenMapper, countReducer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Output {
		n, _ := strconv.Atoi(string(p.Value))
		got[p.Key] += n
	}
	if got[1] != 100 || got[2] != 100 || got[3] != 100 {
		t.Errorf("counts = %v", got)
	}
}
