// Package ssample implements a linear-time approximate distance-threshold
// detector by sensitivity sampling, after Lucic, Bachem & Krause
// (arXiv:1605.00519). Instead of counting every point's neighbors against
// the full pool (quadratic), each point's neighbor count is *estimated*
// from a small weighted sample of the pool:
//
//  1. a uniform pilot sample gives every point a rough neighbor count ĉ₀,
//  2. each pool point's sensitivity s(p) = 1/(1 + ĉ₀(p)) upper-bounds its
//     worst-case share of any point's neighbor count — isolated points
//     (the ones whose presence or absence flips outlier verdicts) get high
//     sensitivity and are kept with near certainty,
//  3. m points are drawn with probability ∝ s(p) and importance weight
//     w = S/(m·s(p)), making Σ w·1[d(q,p) ≤ r] an unbiased estimator of
//     q's true neighbor count.
//
// The Hoeffding-style sample size m = ⌈ln(2/δ)/(2ε²)⌉ bounds the relative
// estimation error by ε with probability 1−δ for each point. Every verdict
// carries a confidence in (0.5, 1] from the normal approximation of the
// estimator's spread, so callers can route low-confidence points to an
// exact tactic.
//
// The detector is approximate: verdicts are NOT guaranteed identical to
// brute force. It is only eligible for planning when the caller opts in
// (Config.AllowApprox at the public API).
package ssample

import (
	"math"
	"math/rand"
	"sort"

	"dod/internal/geom"
)

// Params configures one scoring pass. R and K mirror detect.Params; Eps
// and Delta set the estimator's error bound (relative error ≤ Eps with
// probability ≥ 1−Delta, per point).
type Params struct {
	R     float64
	K     int
	Eps   float64 // default 0.1
	Delta float64 // default 0.01
}

// Default estimator error bound: relative error ≤ DefaultEps with
// probability ≥ 1 − DefaultDelta, per point. Exported so cost models price
// the same sample size the detector draws.
const (
	DefaultEps   = 0.1
	DefaultDelta = 0.01
)

func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = DefaultEps
	}
	if p.Delta <= 0 {
		p.Delta = DefaultDelta
	}
	return p
}

// PilotSize is the uniform pilot sample bound used by the sensitivity
// pass; exported so cost models price the same constant.
const PilotSize = 256

// SampleSize returns the number of weighted draws for error bound eps at
// confidence 1-delta, clamped to [32, n].
func SampleSize(n int, eps, delta float64) int {
	if n <= 0 {
		return 0
	}
	m := int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
	if m < 32 {
		m = 32
	}
	if m > n {
		m = n
	}
	return m
}

// Score is one point's estimated verdict.
type Score struct {
	ID           uint64
	EstNeighbors float64 // unbiased estimate of the true neighbor count
	Outlier      bool    // EstNeighbors < K - 0.5
	Confidence   float64 // P(verdict correct) under the normal approximation, in (0.5, 1]
}

// Result is the output of one ScoreSet pass.
type Result struct {
	Scores     []Score
	DistComps  int64
	SampleSize int // weighted draws actually used
}

// Plan is the frozen sampling state of one pass: the weighted draws and
// their importance weights. Building it costs the pilot scan; scoring any
// range of core points against it is read-only, so tiled callers build one
// Plan sequentially and score tiles concurrently with verdicts (and
// distance-computation counts) identical to the sequential pass.
type Plan struct {
	all       *geom.PointSet
	r2        float64
	kThresh   float64
	draws     []int32
	weights   []float64
	BuildComp int64 // distance computations spent building the plan
}

// SampleSizeUsed reports the number of weighted draws in the plan.
func (pl *Plan) SampleSizeUsed() int { return len(pl.draws) }

// BuildPlan runs the pilot and sensitivity passes over the full set and
// freezes the weighted sample. Deterministic for a fixed (all, params,
// seed).
func BuildPlan(all *geom.PointSet, params Params, seed int64) *Plan {
	params = params.withDefaults()
	n := all.Len()
	pl := &Plan{
		all:     all,
		r2:      params.R * params.R,
		kThresh: float64(params.K) - 0.5,
	}
	if n == 0 {
		return pl
	}
	r2 := pl.r2
	rng := rand.New(rand.NewSource(seed))

	// Pilot: uniform sample of the pool, then a rough neighbor count for
	// every pool point against the pilot only — two cheap linear passes.
	m0 := PilotSize
	if m0 > n {
		m0 = n
	}
	pilot := rng.Perm(n)[:m0]
	sort.Ints(pilot) // deterministic scan order, cache-friendly
	c0 := make([]float64, n)
	scale := float64(n) / float64(m0)
	for i := 0; i < n; i++ {
		q := all.CoordsAt(i)
		id := all.IDs[i]
		cnt := 0
		for _, j := range pilot {
			pl.BuildComp++
			if all.IDs[j] != id && dist2(q, all.CoordsAt(j)) <= r2 {
				cnt++
			}
		}
		c0[i] = float64(cnt) * scale
	}

	// Sensitivities and their prefix sums for inverse-CDF sampling.
	sens := make([]float64, n)
	var totalS float64
	for i := range sens {
		sens[i] = 1 / (1 + c0[i])
		totalS += sens[i]
	}
	prefix := make([]float64, n)
	acc := 0.0
	for i, s := range sens {
		acc += s
		prefix[i] = acc
	}

	// m weighted draws with replacement; weight w makes the estimator
	// unbiased: E[Σ w·1] = Σ_p (m·s_p/S)·(S/(m·s_p))·1 = true count.
	m := SampleSize(n, params.Eps, params.Delta)
	pl.draws = make([]int32, m)
	pl.weights = make([]float64, m)
	for t := 0; t < m; t++ {
		u := rng.Float64() * totalS
		i := sort.SearchFloat64s(prefix, u)
		if i >= n {
			i = n - 1
		}
		pl.draws[t] = int32(i)
		pl.weights[t] = totalS / (float64(m) * sens[i])
	}
	return pl
}

// ScoreRange scores core points [lo, hi) against the frozen plan,
// appending one Score per point to dst and returning it plus the distance
// computations spent. Safe for concurrent calls on disjoint ranges.
func (pl *Plan) ScoreRange(dst []Score, lo, hi int) ([]Score, int64) {
	all := pl.all
	m := len(pl.draws)
	var comps int64
	for i := lo; i < hi; i++ {
		q := all.CoordsAt(i)
		id := all.IDs[i]
		var est, sumSq float64
		for t := 0; t < m; t++ {
			j := pl.draws[t]
			comps++
			if all.IDs[j] != id && dist2(q, all.CoordsAt(int(j))) <= pl.r2 {
				est += pl.weights[t]
				sumSq += pl.weights[t] * pl.weights[t]
			}
		}
		// Standard error of the sum of m independent draws; the normal
		// approximation turns the margin |est - threshold| into a
		// two-sided verdict confidence in (0.5, 1].
		mean := est / float64(m)
		variance := sumSq/float64(m) - mean*mean
		if variance < 0 {
			variance = 0
		}
		se := math.Sqrt(variance * float64(m))
		conf := 1.0
		if se > 0 {
			z := math.Abs(est-pl.kThresh) / se
			conf = 0.5 * (1 + math.Erf(z/math.Sqrt2))
		}
		dst = append(dst, Score{
			ID:           id,
			EstNeighbors: est,
			Outlier:      est < pl.kThresh,
			Confidence:   conf,
		})
	}
	return dst, comps
}

// ScoreSet estimates the neighbor count of each of the first nCore points
// of all against the full set (core ∪ support), and classifies them as
// outliers (< K neighbors within R). Deterministic for a fixed seed.
func ScoreSet(all *geom.PointSet, nCore int, params Params, seed int64) Result {
	var res Result
	if nCore == 0 || all.Len() == 0 {
		return res
	}
	pl := BuildPlan(all, params, seed)
	res.SampleSize = pl.SampleSizeUsed()
	scores, comps := pl.ScoreRange(make([]Score, 0, nCore), 0, nCore)
	res.Scores = scores
	res.DistComps = pl.BuildComp + comps
	return res
}

func dist2(a, b []float64) float64 {
	var d2 float64
	for j, v := range a {
		d := v - b[j]
		d2 += d * d
	}
	return d2
}
