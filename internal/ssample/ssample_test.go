package ssample

import (
	"math"
	"testing"

	"dod/internal/geom"
	"dod/internal/synth"
)

func setOf(pts []geom.Point) *geom.PointSet {
	s := geom.NewPointSet(pts[0].Dim(), len(pts))
	for _, p := range pts {
		s.Append(p)
	}
	return s
}

func TestSampleSize(t *testing.T) {
	// Hoeffding: ceil(ln(2/0.01) / (2·0.1²)) = ceil(264.9) = 265.
	if got := SampleSize(100000, 0.1, 0.01); got != 265 {
		t.Fatalf("SampleSize = %d, want 265", got)
	}
	if got := SampleSize(10, 0.1, 0.01); got != 10 {
		t.Fatalf("small n not clamped: %d", got)
	}
	if got := SampleSize(100000, 1, 0.5); got != 32 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := SampleSize(0, 0.1, 0.01); got != 0 {
		t.Fatalf("n=0: %d", got)
	}
}

func TestScoreSetDeterministic(t *testing.T) {
	pts := synth.GaussianCloud(2000, 4, 11)
	s := setOf(pts)
	p := Params{R: 10, K: 4}
	a := ScoreSet(s, s.Len(), p, 77)
	b := ScoreSet(s, s.Len(), p, 77)
	if a.DistComps != b.DistComps || a.SampleSize != b.SampleSize {
		t.Fatalf("stats diverge: %+v vs %+v", a, b)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d diverges: %+v vs %+v", i, a.Scores[i], b.Scores[i])
		}
	}
}

// TestScoreRangeMatchesScoreSet: tiling the scoring over ranges against
// one frozen plan must reproduce the sequential pass exactly — the
// property the parallel detector path relies on.
func TestScoreRangeMatchesScoreSet(t *testing.T) {
	pts := synth.GaussianCloud(1500, 4, 3)
	s := setOf(pts)
	p := Params{R: 10, K: 4}
	whole := ScoreSet(s, s.Len(), p, 5)

	pl := BuildPlan(s, p, 5)
	var tiled []Score
	var comps int64
	for lo := 0; lo < s.Len(); lo += 400 {
		hi := lo + 400
		if hi > s.Len() {
			hi = s.Len()
		}
		part, c := pl.ScoreRange(nil, lo, hi)
		tiled = append(tiled, part...)
		comps += c
	}
	if pl.BuildComp+comps != whole.DistComps {
		t.Fatalf("comps diverge: %d vs %d", pl.BuildComp+comps, whole.DistComps)
	}
	for i := range whole.Scores {
		if whole.Scores[i] != tiled[i] {
			t.Fatalf("score %d diverges", i)
		}
	}
}

// TestAccuracyOnSeparatedWorkload: on a workload whose outliers are far
// from every cluster, the estimator must agree with the exact verdict on
// the overwhelming majority of points and flag the planted points.
func TestAccuracyOnSeparatedWorkload(t *testing.T) {
	pts, planted := synth.HighDimPlanted(3000, 16, 4, 0.02, 21)
	s := setOf(pts)
	p := Params{R: 4, K: 4}
	res := ScoreSet(s, s.Len(), p, 9)
	if len(res.Scores) != s.Len() {
		t.Fatalf("scored %d of %d", len(res.Scores), s.Len())
	}

	plantedSet := map[uint64]bool{}
	for _, id := range planted {
		plantedSet[id] = true
	}
	missed, extra := 0, 0
	for _, sc := range res.Scores {
		if sc.Confidence <= 0.5 || sc.Confidence > 1 || math.IsNaN(sc.Confidence) {
			t.Fatalf("confidence %g out of (0.5, 1]", sc.Confidence)
		}
		if plantedSet[sc.ID] && !sc.Outlier {
			missed++
		}
		if !plantedSet[sc.ID] && sc.Outlier {
			extra++
		}
	}
	if missed > 0 {
		// Planted points are isolated: a weighted sample that retains
		// isolated points with near-certainty must estimate ~0 neighbors.
		t.Fatalf("missed %d of %d planted outliers", missed, len(planted))
	}
	// Cluster stragglers may legitimately be outliers; only flag gross
	// disagreement (> 2% of the pool).
	if extra > s.Len()/50 {
		t.Fatalf("flagged %d non-planted points (pool %d)", extra, s.Len())
	}
}

// TestEstimatorUnbiasedOnUniform: averaged over many seeds, the estimated
// neighbor count of a fixed point must approach its true count.
func TestEstimatorUnbiasedOnUniform(t *testing.T) {
	pts := synth.GaussianCloud(1200, 2, 4)
	s := setOf(pts)
	p := Params{R: 10, K: 4}
	truth, _ := s.CountWithin2Coords(s.CoordsAt(0), s.IDs[0], 0, s.Len(), 100)

	var sum float64
	const rounds = 40
	for seed := int64(0); seed < rounds; seed++ {
		res := ScoreSet(s, 1, p, seed)
		sum += res.Scores[0].EstNeighbors
	}
	avg := sum / rounds
	if truth == 0 {
		t.Skip("degenerate: point 0 has no neighbors")
	}
	if rel := math.Abs(avg-float64(truth)) / float64(truth); rel > 0.25 {
		t.Fatalf("estimator biased: avg %.1f vs truth %d (rel %.2f)", avg, truth, rel)
	}
}
