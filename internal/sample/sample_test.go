package sample

import (
	"math"
	"math/rand"
	"testing"

	"dod/internal/codec"
	"dod/internal/geom"
	"dod/internal/mapreduce"
)

func domain10() geom.Rect {
	return geom.NewRect([]float64{0, 0}, []float64{10, 10})
}

func uniformPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * 10, rng.Float64() * 10}}
	}
	return pts
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Domain: domain10(), BucketsPerDim: 0, Rate: 0.5},
		{Domain: domain10(), BucketsPerDim: 4, Rate: 0},
		{Domain: domain10(), BucketsPerDim: 4, Rate: 1.5},
	}
	for i, cfg := range bad {
		if _, err := FromPoints(cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestFromPointsFullRateExact(t *testing.T) {
	// Rate 1.0: the histogram is an exact per-bucket count.
	pts := uniformPoints(1000, 1)
	cfg := Config{Domain: domain10(), BucketsPerDim: 5, Rate: 1.0, Seed: 2}
	h, err := FromPoints(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimatedTotal(); got != 1000 {
		t.Errorf("EstimatedTotal = %g, want 1000", got)
	}
	// Cross-check one bucket by brute force.
	ord := h.Grid.CellOrdinal(pts[0])
	rect := h.Grid.CellRect(h.Grid.Unflatten(ord))
	manual := 0
	for _, p := range pts {
		if h.Grid.CellOrdinal(p) == ord {
			manual++
		}
	}
	if h.BucketCount(ord) != float64(manual) {
		t.Errorf("bucket %d (%v): count %g, manual %d", ord, rect, h.BucketCount(ord), manual)
	}
}

func TestFromPointsScalingUnbiased(t *testing.T) {
	// At rate 0.1 the scaled total should estimate the true cardinality
	// within a loose tolerance.
	pts := uniformPoints(20000, 3)
	cfg := Config{Domain: domain10(), BucketsPerDim: 4, Rate: 0.1, Seed: 4}
	h, err := FromPoints(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimatedTotal(); math.Abs(got-20000) > 2000 {
		t.Errorf("EstimatedTotal = %g, want ≈ 20000", got)
	}
}

func TestBucketDensityUniform(t *testing.T) {
	pts := uniformPoints(40000, 5)
	cfg := Config{Domain: domain10(), BucketsPerDim: 2, Rate: 1.0, Seed: 6}
	h, _ := FromPoints(cfg, pts)
	// Uniform data: every bucket's density ≈ 40000/100 = 400 per unit².
	for ord := 0; ord < h.Grid.NumCells(); ord++ {
		if d := h.BucketDensity(ord); math.Abs(d-400) > 40 {
			t.Errorf("bucket %d density = %g, want ≈ 400", ord, d)
		}
	}
}

func TestOutOfDomainPointsClamped(t *testing.T) {
	pts := []geom.Point{
		{ID: 1, Coords: []float64{-5, -5}},
		{ID: 2, Coords: []float64{100, 100}},
	}
	cfg := Config{Domain: domain10(), BucketsPerDim: 2, Rate: 1.0, Seed: 1}
	h, err := FromPoints(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimatedTotal(); got != 2 {
		t.Errorf("clamped points lost: total %g", got)
	}
}

func TestNonEmptyBuckets(t *testing.T) {
	pts := []geom.Point{{ID: 1, Coords: []float64{1, 1}}, {ID: 2, Coords: []float64{9, 9}}}
	cfg := Config{Domain: domain10(), BucketsPerDim: 2, Rate: 1.0, Seed: 1}
	h, _ := FromPoints(cfg, pts)
	ne := h.NonEmptyBuckets()
	if len(ne) != 2 {
		t.Errorf("NonEmptyBuckets = %v, want 2 buckets", ne)
	}
}

func splitsFor(points []geom.Point, perSplit int) []mapreduce.Split {
	var splits []mapreduce.Split
	for i := 0; i < len(points); i += perSplit {
		j := i + perSplit
		if j > len(points) {
			j = len(points)
		}
		splits = append(splits, mapreduce.Split{
			Name: "block",
			Data: codec.EncodePoints(points[i:j]),
		})
	}
	return splits
}

func TestRunJobMatchesLocalStatistically(t *testing.T) {
	pts := uniformPoints(30000, 7)
	cfg := Config{Domain: domain10(), BucketsPerDim: 4, Rate: 0.2, Seed: 9}
	h, res, err := RunJob(cfg, mapreduce.Config{}, splitsFor(pts, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimatedTotal(); math.Abs(got-30000) > 3000 {
		t.Errorf("distributed EstimatedTotal = %g, want ≈ 30000", got)
	}
	if res.Metrics.Counter("sample.scanned") != 30000 {
		t.Errorf("scanned = %d, want 30000", res.Metrics.Counter("sample.scanned"))
	}
	sampled := res.Metrics.Counter("sample.sampled")
	if math.Abs(float64(sampled)-6000) > 600 {
		t.Errorf("sampled = %d, want ≈ 6000", sampled)
	}
}

func TestRunJobFullRateExact(t *testing.T) {
	pts := uniformPoints(500, 11)
	cfg := Config{Domain: domain10(), BucketsPerDim: 3, Rate: 1.0, Seed: 13}
	h, _, err := RunJob(cfg, mapreduce.Config{}, splitsFor(pts, 64))
	if err != nil {
		t.Fatal(err)
	}
	local, _ := FromPoints(cfg, pts)
	for ord := range h.Counts {
		if h.Counts[ord] != local.Counts[ord] {
			t.Errorf("bucket %d: job %g, local %g", ord, h.Counts[ord], local.Counts[ord])
		}
	}
}

func TestRunJobDeterministicAcrossRuns(t *testing.T) {
	pts := uniformPoints(5000, 15)
	cfg := Config{Domain: domain10(), BucketsPerDim: 4, Rate: 0.3, Seed: 17}
	splits := splitsFor(pts, 500)
	h1, _, err := RunJob(cfg, mapreduce.Config{Parallelism: 1}, splits)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := RunJob(cfg, mapreduce.Config{Parallelism: 8}, splits)
	if err != nil {
		t.Fatal(err)
	}
	for ord := range h1.Counts {
		if h1.Counts[ord] != h2.Counts[ord] {
			t.Fatalf("bucket %d differs across parallelism: %g vs %g", ord, h1.Counts[ord], h2.Counts[ord])
		}
	}
}

func TestRunJobSurvivesTaskFailures(t *testing.T) {
	pts := uniformPoints(2000, 19)
	cfg := Config{Domain: domain10(), BucketsPerDim: 4, Rate: 1.0, Seed: 21}
	splits := splitsFor(pts, 200)
	clean, _, err := RunJob(cfg, mapreduce.Config{}, splits)
	if err != nil {
		t.Fatal(err)
	}
	flaky, _, err := RunJob(cfg, mapreduce.Config{FailureRate: 0.3, MaxAttempts: 50, Seed: 23}, splits)
	if err != nil {
		t.Fatal(err)
	}
	for ord := range clean.Counts {
		if clean.Counts[ord] != flaky.Counts[ord] {
			t.Fatalf("bucket %d: failure injection changed result", ord)
		}
	}
}

func TestRunJobRejectsCorruptSplit(t *testing.T) {
	cfg := Config{Domain: domain10(), BucketsPerDim: 2, Rate: 1.0, Seed: 1}
	splits := []mapreduce.Split{{Name: "bad", Data: []byte{0xFF}}}
	if _, _, err := RunJob(cfg, mapreduce.Config{}, splits); err == nil {
		t.Error("corrupt split accepted")
	}
}
