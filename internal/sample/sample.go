// Package sample implements the distribution-estimation stage of DMT's
// preprocessing job (Sec. V-A, stage one): each map task draws a Bernoulli
// random sample from its input split ("random sampling preserves the
// distribution of the underlying dataset"), aggregates the sample at the
// granularity of mini buckets — the units of the DSHC clustering — and a
// single reducer assembles the global mini-bucket histogram used for plan
// generation.
package sample

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"dod/internal/codec"
	"dod/internal/geom"
	"dod/internal/mapreduce"
)

// DefaultRate is the paper's default sampling rate Υ of 0.5%.
const DefaultRate = 0.005

// Retention caps for the raw sample points carried alongside the bucket
// counts (see Histogram.Sampled): per map task, and after the reducer
// merge. Small enough that the pair scan in AvgNeighbors stays ~1M
// distance computations worst case.
const (
	MaxRetainedPerTask = 512
	MaxRetained        = 1024
)

// sampledKey is the reserved reducer key carrying retained sample points.
// Bucket ordinals are bounded by the grid cell cap, so it can never
// collide with one.
const sampledKey = ^uint64(0)

// Config controls histogram construction.
type Config struct {
	Domain        geom.Rect // full domain space of the dataset
	BucketsPerDim int       // mini buckets along each dimension
	Rate          float64   // Bernoulli sampling rate Υ in (0, 1]
	Seed          int64
}

func (c Config) validate() error {
	if c.BucketsPerDim < 1 {
		return fmt.Errorf("sample: BucketsPerDim %d < 1", c.BucketsPerDim)
	}
	if c.Rate <= 0 || c.Rate > 1 {
		return fmt.Errorf("sample: rate %g outside (0, 1]", c.Rate)
	}
	return nil
}

// Histogram is the estimated distribution of a dataset over mini buckets.
// Counts are scaled by 1/Rate, so they estimate true per-bucket
// cardinalities.
//
// Sampled holds a capped subset of the raw sample points (at most
// MaxRetained, sorted by ID). Bucket counts capture where mass sits but —
// especially in high dimension, where one bucket can cover the whole
// domain — say nothing about how *clumped* it is at the scale of the query
// radius; the retained points do, via AvgNeighbors. Sampled may be nil
// (legacy histograms, tests); consumers must treat the statistic as
// optional.
type Histogram struct {
	Grid    *geom.Grid
	Counts  []float64
	Rate    float64
	Sampled []geom.Point

	nbCacheR   float64
	nbCacheVal float64
	nbCacheOK  bool
}

// AvgNeighbors estimates the mean number of dataset points within
// distance r of a random data point, from pair counts over the retained
// sample scaled up by EstimatedTotal/len(Sampled). It is the
// dimension-free density statistic the proximity-graph cost model keys
// on: volume-based densities underflow to zero in high dimension, while
// this measures clumping at radius r directly. Returns ok=false when too
// few points were retained to say anything. The result for one r is
// cached; the planner queries a single radius throughout a run. Not safe
// for concurrent use (plan generation is sequential).
func (h *Histogram) AvgNeighbors(r float64) (lambda float64, ok bool) {
	if h.nbCacheOK && h.nbCacheR == r {
		return h.nbCacheVal, true
	}
	s := h.Sampled
	if len(s) < 16 {
		return 0, false
	}
	r2 := r * r
	var pairs int64
	for i := range s {
		ci := s[i].Coords
		for j := i + 1; j < len(s); j++ {
			var d2 float64
			for t, v := range ci {
				d := v - s[j].Coords[t]
				d2 += d * d
			}
			if d2 <= r2 {
				pairs++
			}
		}
	}
	// Each within-r pair gives both endpoints one sample neighbor; a
	// uniform sample of size s from N points sees ~s/N of each point's
	// true neighbors.
	avgInSample := 2 * float64(pairs) / float64(len(s))
	lambda = avgInSample * h.EstimatedTotal() / float64(len(s))
	h.nbCacheR, h.nbCacheVal, h.nbCacheOK = r, lambda, true
	return lambda, true
}

// EstimatedTotal returns the estimated dataset cardinality.
func (h *Histogram) EstimatedTotal() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketCount returns the estimated cardinality of one mini bucket.
func (h *Histogram) BucketCount(ord int) float64 { return h.Counts[ord] }

// BucketDensity returns estimated points per unit volume in one bucket.
func (h *Histogram) BucketDensity(ord int) float64 {
	vol := h.Grid.CellRect(h.Grid.Unflatten(ord)).AreaEps(1e-12)
	return h.Counts[ord] / vol
}

// NonEmptyBuckets returns the ordinals with positive estimated counts.
func (h *Histogram) NonEmptyBuckets() []int {
	var out []int
	for ord, c := range h.Counts {
		if c > 0 {
			out = append(out, ord)
		}
	}
	return out
}

// FromPoints builds a histogram directly from in-memory points. It is the
// centralized equivalent of RunJob, used by tests and by callers that
// already hold the data locally.
func FromPoints(cfg Config, points []geom.Point) (*Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	grid := geom.NewGrid(cfg.Domain, dims(cfg))
	h := &Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: cfg.Rate}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, p := range points {
		if rng.Float64() >= cfg.Rate {
			continue
		}
		h.Counts[grid.CellOrdinal(cfg.Domain.Clamp(p))] += 1 / cfg.Rate
		if len(h.Sampled) < MaxRetained {
			h.Sampled = append(h.Sampled, p.Clone())
		}
	}
	return h, nil
}

// DimsFor returns perDim buckets along each of dim axes, lowered so the
// total cell count stays within a flat-array-friendly bound: perDim^dim
// overflows int (and any allocation budget) long before the d≥32 workloads
// this repo targets, while a coarser grid still orders plan generation.
func DimsFor(dim, perDim int) []int {
	const maxCells = 1 << 20
	for {
		total := 1
		fits := true
		for i := 0; i < dim; i++ {
			if total > maxCells/perDim {
				fits = false
				break
			}
			total *= perDim
		}
		if fits || perDim == 1 {
			break
		}
		perDim--
	}
	d := make([]int, dim)
	for i := range d {
		d[i] = perDim
	}
	return d
}

func dims(cfg Config) []int {
	return DimsFor(cfg.Domain.Dim(), cfg.BucketsPerDim)
}

// RunJob executes the distributed sampling job over the given input splits
// (each split's Data is a codec.EncodePoints block). It mirrors the paper's
// stage-one MapReduce: mappers sample and pre-aggregate per mini bucket; a
// single reducer merges the bucket statistics.
func RunJob(cfg Config, mrCfg mapreduce.Config, splits []mapreduce.Split) (*Histogram, *mapreduce.Result, error) {
	return RunJobContext(context.Background(), cfg, mrCfg, splits)
}

// RunJobContext is RunJob with cooperative cancellation: once jobCtx is
// done the underlying MapReduce job stops dispatching tasks and returns
// jobCtx's error.
func RunJobContext(jobCtx context.Context, cfg Config, mrCfg mapreduce.Config, splits []mapreduce.Split) (*Histogram, *mapreduce.Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	grid := geom.NewGrid(cfg.Domain, dims(cfg))

	mapper := mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		points, err := codec.DecodePoints(split.Data)
		if err != nil {
			return fmt.Errorf("sample: split %s: %w", split.Name, err)
		}
		// Per-task seed: deterministic regardless of scheduling.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(ctx.TaskID)))
		local := make(map[int]uint64)
		var retained []geom.Point
		for _, p := range points {
			ctx.Inc("sample.scanned", 1)
			if rng.Float64() >= cfg.Rate {
				continue
			}
			ctx.Inc("sample.sampled", 1)
			local[grid.CellOrdinal(cfg.Domain.Clamp(p))]++
			if len(retained) < MaxRetainedPerTask {
				retained = append(retained, p)
			}
		}
		for ord, count := range local {
			emit(uint64(ord), binary.AppendUvarint(nil, count))
		}
		if len(retained) > 0 {
			emit(sampledKey, codec.EncodePoints(retained))
		}
		return nil
	})

	reducer := mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		if key == sampledKey {
			// Merge per-task retained points; sorting by ID before the cap
			// makes the merge independent of map-task completion order.
			var merged []geom.Point
			for _, v := range values {
				pts, err := codec.DecodePoints(v)
				if err != nil {
					return fmt.Errorf("sample: malformed retained points: %w", err)
				}
				merged = append(merged, pts...)
			}
			sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
			if len(merged) > MaxRetained {
				merged = merged[:MaxRetained]
			}
			emit(key, codec.EncodePoints(merged))
			return nil
		}
		var total uint64
		for _, v := range values {
			n, read := binary.Uvarint(v)
			if read <= 0 {
				return fmt.Errorf("sample: malformed count for bucket %d", key)
			}
			total += n
		}
		emit(key, binary.AppendUvarint(nil, total))
		return nil
	})

	// Plan generation is centralized (Sec. V-A): one reducer.
	mrCfg.NumReducers = 1
	res, err := mapreduce.RunContext(jobCtx, mrCfg, splits, mapper, reducer)
	if err != nil {
		return nil, nil, err
	}

	h := &Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: cfg.Rate}
	for _, pair := range res.Output {
		if pair.Key == sampledKey {
			pts, err := codec.DecodePoints(pair.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("sample: malformed retained points: %w", err)
			}
			h.Sampled = pts
			continue
		}
		n, read := binary.Uvarint(pair.Value)
		if read <= 0 {
			return nil, nil, fmt.Errorf("sample: malformed reducer output for bucket %d", pair.Key)
		}
		h.Counts[pair.Key] = float64(n) / cfg.Rate
	}
	return h, res, nil
}
