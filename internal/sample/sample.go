// Package sample implements the distribution-estimation stage of DMT's
// preprocessing job (Sec. V-A, stage one): each map task draws a Bernoulli
// random sample from its input split ("random sampling preserves the
// distribution of the underlying dataset"), aggregates the sample at the
// granularity of mini buckets — the units of the DSHC clustering — and a
// single reducer assembles the global mini-bucket histogram used for plan
// generation.
package sample

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"dod/internal/codec"
	"dod/internal/geom"
	"dod/internal/mapreduce"
)

// DefaultRate is the paper's default sampling rate Υ of 0.5%.
const DefaultRate = 0.005

// Config controls histogram construction.
type Config struct {
	Domain        geom.Rect // full domain space of the dataset
	BucketsPerDim int       // mini buckets along each dimension
	Rate          float64   // Bernoulli sampling rate Υ in (0, 1]
	Seed          int64
}

func (c Config) validate() error {
	if c.BucketsPerDim < 1 {
		return fmt.Errorf("sample: BucketsPerDim %d < 1", c.BucketsPerDim)
	}
	if c.Rate <= 0 || c.Rate > 1 {
		return fmt.Errorf("sample: rate %g outside (0, 1]", c.Rate)
	}
	return nil
}

// Histogram is the estimated distribution of a dataset over mini buckets.
// Counts are scaled by 1/Rate, so they estimate true per-bucket
// cardinalities.
type Histogram struct {
	Grid   *geom.Grid
	Counts []float64
	Rate   float64
}

// EstimatedTotal returns the estimated dataset cardinality.
func (h *Histogram) EstimatedTotal() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketCount returns the estimated cardinality of one mini bucket.
func (h *Histogram) BucketCount(ord int) float64 { return h.Counts[ord] }

// BucketDensity returns estimated points per unit volume in one bucket.
func (h *Histogram) BucketDensity(ord int) float64 {
	vol := h.Grid.CellRect(h.Grid.Unflatten(ord)).AreaEps(1e-12)
	return h.Counts[ord] / vol
}

// NonEmptyBuckets returns the ordinals with positive estimated counts.
func (h *Histogram) NonEmptyBuckets() []int {
	var out []int
	for ord, c := range h.Counts {
		if c > 0 {
			out = append(out, ord)
		}
	}
	return out
}

// FromPoints builds a histogram directly from in-memory points. It is the
// centralized equivalent of RunJob, used by tests and by callers that
// already hold the data locally.
func FromPoints(cfg Config, points []geom.Point) (*Histogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	grid := geom.NewGrid(cfg.Domain, dims(cfg))
	h := &Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: cfg.Rate}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, p := range points {
		if rng.Float64() >= cfg.Rate {
			continue
		}
		h.Counts[grid.CellOrdinal(cfg.Domain.Clamp(p))] += 1 / cfg.Rate
	}
	return h, nil
}

func dims(cfg Config) []int {
	d := make([]int, cfg.Domain.Dim())
	for i := range d {
		d[i] = cfg.BucketsPerDim
	}
	return d
}

// RunJob executes the distributed sampling job over the given input splits
// (each split's Data is a codec.EncodePoints block). It mirrors the paper's
// stage-one MapReduce: mappers sample and pre-aggregate per mini bucket; a
// single reducer merges the bucket statistics.
func RunJob(cfg Config, mrCfg mapreduce.Config, splits []mapreduce.Split) (*Histogram, *mapreduce.Result, error) {
	return RunJobContext(context.Background(), cfg, mrCfg, splits)
}

// RunJobContext is RunJob with cooperative cancellation: once jobCtx is
// done the underlying MapReduce job stops dispatching tasks and returns
// jobCtx's error.
func RunJobContext(jobCtx context.Context, cfg Config, mrCfg mapreduce.Config, splits []mapreduce.Split) (*Histogram, *mapreduce.Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	grid := geom.NewGrid(cfg.Domain, dims(cfg))

	mapper := mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		points, err := codec.DecodePoints(split.Data)
		if err != nil {
			return fmt.Errorf("sample: split %s: %w", split.Name, err)
		}
		// Per-task seed: deterministic regardless of scheduling.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(ctx.TaskID)))
		local := make(map[int]uint64)
		for _, p := range points {
			ctx.Inc("sample.scanned", 1)
			if rng.Float64() >= cfg.Rate {
				continue
			}
			ctx.Inc("sample.sampled", 1)
			local[grid.CellOrdinal(cfg.Domain.Clamp(p))]++
		}
		for ord, count := range local {
			emit(uint64(ord), binary.AppendUvarint(nil, count))
		}
		return nil
	})

	reducer := mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		var total uint64
		for _, v := range values {
			n, read := binary.Uvarint(v)
			if read <= 0 {
				return fmt.Errorf("sample: malformed count for bucket %d", key)
			}
			total += n
		}
		emit(key, binary.AppendUvarint(nil, total))
		return nil
	})

	// Plan generation is centralized (Sec. V-A): one reducer.
	mrCfg.NumReducers = 1
	res, err := mapreduce.RunContext(jobCtx, mrCfg, splits, mapper, reducer)
	if err != nil {
		return nil, nil, err
	}

	h := &Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: cfg.Rate}
	for _, pair := range res.Output {
		n, read := binary.Uvarint(pair.Value)
		if read <= 0 {
			return nil, nil, fmt.Errorf("sample: malformed reducer output for bucket %d", pair.Key)
		}
		h.Counts[pair.Key] = float64(n) / cfg.Rate
	}
	return h, res, nil
}
