package plan

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"dod/internal/detect"
	"dod/internal/geom"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	h := skewedHistogram(t)
	for _, planner := range allPlanners {
		orig, err := planner.Build(h, Options{
			NumReducers: 4, NumPartitions: 12, Params: testParams, Detector: detect.NestedLoop,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", planner.Name(), err)
		}
		var restored Plan
		if err := json.Unmarshal(data, &restored); err != nil {
			t.Fatalf("%s: unmarshal: %v", planner.Name(), err)
		}
		if restored.Name != orig.Name || restored.NumReducers != orig.NumReducers ||
			restored.SupportR != orig.SupportR || len(restored.Partitions) != len(orig.Partitions) {
			t.Fatalf("%s: header mismatch after roundtrip", planner.Name())
		}
		for i := range orig.Partitions {
			a, b := orig.Partitions[i], restored.Partitions[i]
			if a.ID != b.ID || !a.Rect.Equal(b.Rect) || a.EstCount != b.EstCount ||
				a.EstCost != b.EstCost || a.Algo != b.Algo || a.Reducer != b.Reducer {
				t.Fatalf("%s: partition %d mismatch", planner.Name(), i)
			}
		}
		// The restored plan must behave identically.
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 200; trial++ {
			p := geom.Point{Coords: []float64{rng.Float64() * 100, rng.Float64() * 100}}
			c1, s1 := orig.Locate(p)
			c2, s2 := restored.Locate(p)
			if c1 != c2 || len(s1) != len(s2) {
				t.Fatalf("%s: Locate diverges after roundtrip", planner.Name())
			}
		}
	}
}

func TestPlanJSONRejectsCorruption(t *testing.T) {
	h := skewedHistogram(t)
	orig, err := DMT.Build(h, Options{NumReducers: 4, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}

	var p Plan
	if err := p.UnmarshalJSON([]byte(`{"bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Unknown algorithm names must be rejected.
	bad := strings.Replace(string(data), `"algo":"`, `"algo":"Quantum`, 1)
	if err := p.UnmarshalJSON([]byte(bad)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// A plan that fails validation (reducer out of range) must be rejected.
	bad = strings.Replace(string(data), `"numReducers":4`, `"numReducers":1`, 1)
	if err := p.UnmarshalJSON([]byte(bad)); err == nil {
		t.Error("invalid plan accepted")
	}
}
