package plan

import (
	"math"
	"testing"

	"dod/internal/cost"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/sample"
)

// flatHistogram builds a histogram with a single uniform density.
func flatHistogram(t *testing.T, bucketsPerDim int, perBucket float64, side float64) *sample.Histogram {
	t.Helper()
	domain := geom.NewRect([]float64{0, 0}, []float64{side, side})
	grid := geom.NewGrid(domain, []int{bucketsPerDim, bucketsPerDim})
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for i := range h.Counts {
		h.Counts[i] = perBucket
	}
	return h
}

func TestMixedCostMatchesUniformModel(t *testing.T) {
	// On a homogeneous region the mixed model must agree with Lemma 4.1
	// applied to the whole region.
	h := flatHistogram(t, 10, 50, 100) // density 0.5, dense regime
	rect := h.Grid.Domain
	count := h.EstimatedTotal()
	prof := cost.PartitionProfile{Cardinality: count, Area: rect.Area(), Dim: 2}

	nlMixed := mixedCost(h, rect, detect.NestedLoop, testParams)
	nlUniform := cost.NestedLoop(prof, testParams)
	if math.Abs(nlMixed-nlUniform)/nlUniform > 1e-9 {
		t.Errorf("uniform NL: mixed %g != lemma %g", nlMixed, nlUniform)
	}

	cbMixed := mixedCost(h, rect, detect.CellBased, testParams)
	cbUniform := cost.CellBased(prof, testParams)
	if math.Abs(cbMixed-cbUniform)/cbUniform > 1e-9 {
		t.Errorf("uniform dense CB: mixed %g != lemma %g", cbMixed, cbUniform)
	}
}

func TestMixedCostPenalizesSparseFringe(t *testing.T) {
	// A dense region with a sparse fringe must cost much more under the
	// mixed Cell-Based model than the whole-region Lemma 4.2 estimate,
	// because every fringe point pays the full-pool fallback.
	h := flatHistogram(t, 10, 0, 100)
	grid := h.Grid
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			if x < 8 {
				h.Counts[grid.Flatten([]int{x, y})] = 200 // dense block
			} else {
				h.Counts[grid.Flatten([]int{x, y})] = 6 // intermediate fringe (density 0.06)
			}
		}
	}
	rect := grid.Domain
	count := h.EstimatedTotal()
	prof := cost.PartitionProfile{Cardinality: count, Area: rect.Area(), Dim: 2}
	uniform := cost.CellBased(prof, testParams) // avg density 1.6 → "dense" → linear
	mixed := mixedCost(h, rect, detect.CellBased, testParams)
	if mixed < uniform*5 {
		t.Errorf("mixed CB %g should far exceed whole-region estimate %g", mixed, uniform)
	}
}

func TestMixedCostZeroOnEmptyRegion(t *testing.T) {
	h := flatHistogram(t, 4, 0, 10)
	if got := mixedCost(h, h.Grid.Domain, detect.NestedLoop, testParams); got != 0 {
		t.Errorf("empty region cost = %g", got)
	}
}

func TestMixedCostAllKinds(t *testing.T) {
	h := flatHistogram(t, 6, 20, 60)
	for _, kind := range []detect.Kind{detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree} {
		if got := mixedCost(h, h.Grid.Domain, kind, testParams); got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%v mixed cost = %g", kind, got)
		}
	}
}

func TestPerPointTrials(t *testing.T) {
	// density 0.1, pool 1000: neighbors = 0.1·π·25 ≈ 7.854;
	// trials = 4·1000/7.854 ≈ 509.3.
	got := cost.PerPointTrials(0.1, 1000, 2, testParams)
	want := 4.0 * 1000 / (0.1 * math.Pi * 25)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PerPointTrials = %g, want %g", got, want)
	}
	// Sparse cap: trials cannot exceed the pool.
	if got := cost.PerPointTrials(1e-9, 1000, 2, testParams); got != 1000 {
		t.Errorf("capped trials = %g, want 1000", got)
	}
	if got := cost.PerPointTrials(0, 1000, 2, testParams); got != 1000 {
		t.Errorf("zero-density trials = %g, want 1000", got)
	}
	if got := cost.PerPointTrials(1, 0, 2, testParams); got != 0 {
		t.Errorf("empty-pool trials = %g, want 0", got)
	}
}

func TestExactSupportSubsetOfExpansion(t *testing.T) {
	// The Def. 3.2 region (rounded corners) is a subset of the Def. 3.3
	// rectangular expansion: every exact support must also be a rect-
	// expansion support, and exact must produce no more supports.
	h := skewedHistogram(t)
	opts := Options{NumReducers: 4, NumPartitions: 16, Params: testParams, Detector: detect.CellBased}
	optsExact := opts
	optsExact.ExactSupport = true

	rectPlan, err := UniSpace.Build(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	exactPlan, err := UniSpace.Build(h, optsExact)
	if err != nil {
		t.Fatal(err)
	}

	probe := func(x, y float64) ([]int, []int) {
		p := geom.Point{Coords: []float64{x, y}}
		_, rectSup := rectPlan.Locate(p)
		_, exactSup := exactPlan.Locate(p)
		return rectSup, exactSup
	}
	totalRect, totalExact := 0, 0
	for x := 0.5; x < 100; x += 3.7 {
		for y := 0.5; y < 100; y += 3.1 {
			rectSup, exactSup := probe(x, y)
			totalRect += len(rectSup)
			totalExact += len(exactSup)
			inRect := map[int]bool{}
			for _, id := range rectSup {
				inRect[id] = true
			}
			for _, id := range exactSup {
				if !inRect[id] {
					t.Fatalf("point (%g,%g): exact support %d not in rect-expansion set", x, y, id)
				}
			}
		}
	}
	if totalExact > totalRect {
		t.Errorf("exact supports %d > expansion supports %d", totalExact, totalRect)
	}
	if totalExact == totalRect {
		t.Log("warning: no corner points sampled; subset check vacuous")
	}
}
