package plan

import (
	"fmt"
	"math"

	"dod/internal/binpack"
	"dod/internal/geom"
	"dod/internal/sample"
)

// Exhaustive solves the multi-tactic optimization problem of Def. 3.5 by
// brute force: it enumerates every rectangular tiling of the mini-bucket
// grid (up to opts.NumPartitions partitions), prices each partition with
// its optimal algorithm (Def. 3.4 over opts.Candidates, using the
// mixed-density models), allocates partitions to reducers by LPT, and
// returns the plan minimizing the maximum reducer cost.
//
// Sec. III-C shows this search space is exponential in the number of
// buckets — the complexity argument that motivates the DMT heuristic — so
// Exhaustive is a validation oracle for tiny instances (≲ 4×4 buckets),
// used by tests and ablations to measure how close DMT lands to the true
// optimum. It returns an error for instances over maxExhaustiveBuckets.
func Exhaustive(hist *sample.Histogram, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	grid := hist.Grid
	if grid.Domain.Dim() != 2 {
		return nil, fmt.Errorf("plan: Exhaustive supports two-dimensional grids")
	}
	const maxExhaustiveBuckets = 16
	if grid.NumCells() > maxExhaustiveBuckets {
		return nil, fmt.Errorf("plan: Exhaustive limited to %d buckets, got %d", maxExhaustiveBuckets, grid.NumCells())
	}
	nx, ny := grid.Dims[0], grid.Dims[1]

	// A tiling is built cell by cell: find the first uncovered cell in
	// row-major order and try every rectangle anchored there.
	type rect struct{ x, y, w, h int }
	covered := make([]bool, nx*ny)
	var current []rect

	price := func(r rect) (geom.Rect, float64, float64) {
		min := []float64{grid.Boundary(0, r.x), grid.Boundary(1, r.y)}
		max := []float64{grid.Boundary(0, r.x+r.w), grid.Boundary(1, r.y+r.h)}
		gr := geom.Rect{Min: min, Max: max}
		count := countInRect(hist, gr)
		best := math.Inf(1)
		for _, kind := range opts.Candidates {
			if c := mixedCost(hist, gr, kind, opts.Params); c < best {
				best = c
			}
		}
		return gr, count, best
	}

	bestCost := math.Inf(1)
	var bestTiling []rect

	evaluate := func(tiling []rect) {
		items := make([]binpack.Item, len(tiling))
		for i, r := range tiling {
			_, _, c := price(r)
			items[i] = binpack.Item{ID: i, Weight: c}
		}
		if load := binpack.LPT(items, opts.NumReducers).MaxLoad(); load < bestCost {
			bestCost = load
			bestTiling = append([]rect(nil), tiling...)
		}
	}

	var search func()
	search = func() {
		// First uncovered cell in row-major order.
		first := -1
		for i, c := range covered {
			if !c {
				first = i
				break
			}
		}
		if first == -1 {
			evaluate(current)
			return
		}
		if len(current) >= opts.NumPartitions {
			return // partition budget exhausted with cells uncovered
		}
		cx, cy := first%nx, first/nx
		for w := 1; cx+w <= nx; w++ {
			// Every cell in the rectangle's first row must be free, or no
			// wider rectangle fits either.
			if covered[cy*nx+cx+w-1] {
				break
			}
			for h := 1; cy+h <= ny; h++ {
				ok := true
				for yy := cy; yy < cy+h && ok; yy++ {
					for xx := cx; xx < cx+w; xx++ {
						if covered[yy*nx+xx] {
							ok = false
							break
						}
					}
				}
				if !ok {
					break
				}
				for yy := cy; yy < cy+h; yy++ {
					for xx := cx; xx < cx+w; xx++ {
						covered[yy*nx+xx] = true
					}
				}
				current = append(current, rect{cx, cy, w, h})
				search()
				current = current[:len(current)-1]
				for yy := cy; yy < cy+h; yy++ {
					for xx := cx; xx < cx+w; xx++ {
						covered[yy*nx+xx] = false
					}
				}
			}
		}
	}
	search()

	if bestTiling == nil {
		return nil, fmt.Errorf("plan: no tiling within %d partitions", opts.NumPartitions)
	}

	pl := &Plan{
		Name:        "Exhaustive",
		Domain:      grid.Domain.Clone(),
		NumReducers: opts.NumReducers,
		SupportR:    opts.Params.R,
	}
	items := make([]binpack.Item, len(bestTiling))
	for i, r := range bestTiling {
		gr, count, _ := price(r)
		// Re-derive the winning algorithm for the stored plan.
		algo := opts.Candidates[0]
		algoCost := mixedCost(hist, gr, algo, opts.Params)
		for _, kind := range opts.Candidates[1:] {
			if c := mixedCost(hist, gr, kind, opts.Params); c < algoCost {
				algo, algoCost = kind, c
			}
		}
		pl.Partitions = append(pl.Partitions, Partition{
			ID: i, Rect: gr, EstCount: count, EstCost: algoCost, Algo: algo,
		})
		items[i] = binpack.Item{ID: i, Weight: algoCost}
	}
	applyAllocation(pl, binpack.LPT(items, opts.NumReducers))
	return pl, pl.Validate()
}
