package plan

import (
	"fmt"
	"math"

	"dod/internal/binpack"
	"dod/internal/cost"
	"dod/internal/detect"
	"dod/internal/dshc"
	"dod/internal/geom"
	"dod/internal/sample"
)

// Options parameterize plan generation.
type Options struct {
	NumReducers   int           // reduce task count; default 1
	NumPartitions int           // target partition count for grid/kd planners; default 4×reducers
	Params        detect.Params // the outlier parameters r, k
	// Detector fixes the algorithm plan for the single-tactic planners
	// (Domain, uniSpace, DDriven, CDriven). DMT ignores it.
	Detector detect.Kind
	// Candidates is DMT's algorithm candidate set A; defaults to the
	// paper's {Nested-Loop, Cell-Based}.
	Candidates []detect.Kind
	// DSHC holds the clustering thresholds for DMT. A zero Tdiff is
	// auto-tuned to the histogram's density spread.
	DSHC dshc.Params
	// ExactSupport selects the exact Def. 3.2 supporting-area criterion
	// instead of the default Def. 3.3 rectangular expansion.
	ExactSupport bool
	// AllowApprox admits approximate detector kinds (Kind.Approximate) into
	// the candidate set. Default off: unless the caller opts in, every
	// tactic a plan can carry is exact, and whole-run byte-identity against
	// BruteForce is preserved. Approximate candidates are silently dropped
	// when unset.
	AllowApprox bool
}

func (o Options) withDefaults() Options {
	if o.NumReducers < 1 {
		o.NumReducers = 1
	}
	if o.NumPartitions < 1 {
		o.NumPartitions = 4 * o.NumReducers
	}
	if len(o.Candidates) == 0 {
		o.Candidates = []detect.Kind{detect.NestedLoop, detect.CellBased}
	}
	if !o.AllowApprox {
		// Copy-on-filter: the caller's slice is never mutated.
		exact := make([]detect.Kind, 0, len(o.Candidates))
		for _, k := range o.Candidates {
			if !k.Approximate() {
				exact = append(exact, k)
			}
		}
		if len(exact) == 0 {
			exact = []detect.Kind{detect.NestedLoop, detect.CellBased}
		}
		o.Candidates = exact
	}
	return o
}

// Planner generates a Plan from the sampled distribution estimate.
type Planner interface {
	Name() string
	Build(hist *sample.Histogram, opts Options) (*Plan, error)
	// NeedsStats reports whether the planner consumes sampled statistics.
	// Planners that return false (Domain, uniSpace) only use the
	// histogram's domain metadata, so the driver skips the sampling job —
	// matching Fig. 10(a), where those baselines show no preprocessing
	// cost.
	NeedsStats() bool
}

// Planners, in the order the experiments compare them.
var (
	Domain   Planner = domainPlanner{}
	UniSpace Planner = uniSpacePlanner{}
	DDriven  Planner = dDrivenPlanner{}
	CDriven  Planner = cDrivenPlanner{}
	DMT      Planner = dmtPlanner{}
)

// ByName resolves a planner from its experiment name.
func ByName(name string) (Planner, error) {
	switch name {
	case "Domain":
		return Domain, nil
	case "uniSpace", "UniSpace":
		return UniSpace, nil
	case "DDriven":
		return DDriven, nil
	case "CDriven":
		return CDriven, nil
	case "DMT":
		return DMT, nil
	default:
		return nil, fmt.Errorf("plan: unknown planner %q", name)
	}
}

// ---------------------------------------------------------------------------
// Domain: equi-width grid, NO supporting area. Local detection misses
// cross-partition neighbors, so the driver must run a second verification
// job (Sec. VI-A methodology). Allocation is round-robin.

type domainPlanner struct{}

func (domainPlanner) NeedsStats() bool { return false }

func (domainPlanner) Name() string { return "Domain" }

func (domainPlanner) Build(hist *sample.Histogram, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	pl := gridPlan("Domain", hist, opts)
	pl.SupportR = 0
	finishRoundRobin(pl, hist, opts)
	return pl, pl.Validate()
}

// ---------------------------------------------------------------------------
// uniSpace: equi-width grid WITH supporting areas (the Sec. III-A
// framework), round-robin allocation.

type uniSpacePlanner struct{}

func (uniSpacePlanner) NeedsStats() bool { return false }

func (uniSpacePlanner) Name() string { return "uniSpace" }

func (uniSpacePlanner) Build(hist *sample.Histogram, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	pl := gridPlan("uniSpace", hist, opts)
	pl.SupportR = opts.Params.R
	finishRoundRobin(pl, hist, opts)
	return pl, pl.Validate()
}

// gridPlan tiles the domain with an equi-width grid of roughly
// opts.NumPartitions cells.
func gridPlan(name string, hist *sample.Histogram, opts Options) *Plan {
	domain := hist.Grid.Domain
	d := domain.Dim()
	perDim := int(math.Round(math.Pow(float64(opts.NumPartitions), 1/float64(d))))
	if perDim < 1 {
		perDim = 1
	}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = perDim
	}
	grid := geom.NewGrid(domain, dims)
	pl := &Plan{Name: name, Domain: domain.Clone(), NumReducers: opts.NumReducers, ExactSupport: opts.ExactSupport}
	for ord := 0; ord < grid.NumCells(); ord++ {
		pl.Partitions = append(pl.Partitions, Partition{
			ID:   ord,
			Rect: grid.CellRect(grid.Unflatten(ord)),
		})
	}
	return pl
}

// finishRoundRobin fills counts, fixed-algorithm costs, and a round-robin
// allocation (the cardinality-oblivious baseline).
func finishRoundRobin(pl *Plan, hist *sample.Histogram, opts Options) {
	fillCounts(pl, hist)
	for i := range pl.Partitions {
		p := &pl.Partitions[i]
		p.Algo = opts.Detector
		p.EstCost = mixedCost(hist, p.Rect, opts.Detector, opts.Params)
		p.Reducer = i % opts.NumReducers
	}
}

// ---------------------------------------------------------------------------
// DDriven: recursive bisection of the domain into partitions of similar
// *cardinality* — the traditional load-balancing assumption — allocated by
// LPT over counts, supporting areas enabled.

type dDrivenPlanner struct{}

func (dDrivenPlanner) NeedsStats() bool { return true }

func (dDrivenPlanner) Name() string { return "DDriven" }

func (dDrivenPlanner) Build(hist *sample.Histogram, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	weight := func(c float64, r geom.Rect) float64 { return c }
	rects := splitByWeight(hist, opts.NumPartitions, weight)
	pl := assemble("DDriven", hist, opts, rects)
	for i := range pl.Partitions {
		p := &pl.Partitions[i]
		p.Algo = opts.Detector
		p.EstCost = mixedCost(hist, p.Rect, opts.Detector, opts.Params)
	}
	// Allocation balances cardinality, not cost: the assumption the paper
	// overturns.
	items := make([]binpack.Item, len(pl.Partitions))
	for i, p := range pl.Partitions {
		items[i] = binpack.Item{ID: p.ID, Weight: p.EstCount}
	}
	applyAllocation(pl, binpack.LPT(items, opts.NumReducers))
	return pl, pl.Validate()
}

// ---------------------------------------------------------------------------
// CDriven: the same recursive bisection, but weighted by the *modeled
// detection cost* of the fixed detector, allocated by LPT over cost — the
// paper's cost-driven partitioning.

type cDrivenPlanner struct{}

func (cDrivenPlanner) NeedsStats() bool { return true }

func (cDrivenPlanner) Name() string { return "CDriven" }

func (cDrivenPlanner) Build(hist *sample.Histogram, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	weight := func(c float64, r geom.Rect) float64 {
		return mixedCost(hist, r, opts.Detector, opts.Params)
	}
	rects := splitByWeight(hist, opts.NumPartitions, weight)
	pl := assemble("CDriven", hist, opts, rects)
	items := make([]binpack.Item, len(pl.Partitions))
	for i := range pl.Partitions {
		p := &pl.Partitions[i]
		p.Algo = opts.Detector
		p.EstCost = mixedCost(hist, p.Rect, opts.Detector, opts.Params)
		items[i] = binpack.Item{ID: p.ID, Weight: p.EstCost}
	}
	applyAllocation(pl, binpack.LPT(items, opts.NumReducers))
	return pl, pl.Validate()
}

// ---------------------------------------------------------------------------
// DMT: the full multi-tactic planner of Sec. V — DSHC density clustering,
// per-partition algorithm selection over the candidate set, cost-balanced
// allocation.

type dmtPlanner struct{}

func (dmtPlanner) NeedsStats() bool { return true }

func (dmtPlanner) Name() string { return "DMT" }

func (dmtPlanner) Build(hist *sample.Histogram, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	params := opts.DSHC
	if params.Tdiff <= 0 && params.DensityClass == nil {
		// Default: regime-aligned density classes. Buckets merge exactly
		// when Corollary 4.3 would give them the same detector, which both
		// keeps the per-partition algorithm choice meaningful and is
		// robust to sampling noise on sparse buckets.
		params.DensityClass = cost.RegimeClass(hist.Grid.Domain.Dim(), opts.Params)
	}
	if params.TmaxPoints <= 0 {
		// Reducer memory bound (criterion 3): a generous multiple of the
		// mean reducer share, so it binds only on pathological clusters.
		params.TmaxPoints = 8 * hist.EstimatedTotal() / float64(opts.NumReducers)
	}
	// Cluster over a lightly smoothed histogram: a single noisy bucket
	// (Poisson speckle in the sample) would otherwise break the
	// rectangular-merge constraint and shatter a homogeneous region into
	// hundreds of clusters. Counts and costs are recomputed from the exact
	// histogram afterwards.
	clusters := dshc.Build(smoothHistogram(hist), params)

	// Refine: DSHC merges density-homogeneous regions regardless of their
	// modeled cost, so a single cluster can exceed an entire reducer's fair
	// share, making balanced allocation impossible (the same concern
	// criterion 3's Tmax# addresses for memory). Split any cluster whose
	// modeled cost exceeds the per-reducer budget along mini-bucket
	// boundaries; density — and therefore the algorithm choice — is
	// preserved by DSHC's homogeneity.
	parts := refineByCost(hist, opts, clusters)

	pl := &Plan{Name: "DMT", Domain: hist.Grid.Domain.Clone(), NumReducers: opts.NumReducers, SupportR: opts.Params.R, ExactSupport: opts.ExactSupport}
	items := make([]binpack.Item, len(parts))
	for i, c := range parts {
		c.ID = i
		pl.Partitions = append(pl.Partitions, c)
		items[i] = binpack.Item{ID: i, Weight: c.EstCost}
	}
	applyAllocation(pl, binpack.LPT(items, opts.NumReducers))
	return pl, pl.Validate()
}

// smoothHistogram returns a copy of hist whose bucket counts are averaged
// over their 3×3 (3^d) neighborhood, suppressing Poisson speckle before
// clustering. Totals are approximately preserved; exact counts are always
// re-derived from the original histogram.
func smoothHistogram(hist *sample.Histogram) *sample.Histogram {
	grid := hist.Grid
	out := &sample.Histogram{Grid: grid, Counts: make([]float64, len(hist.Counts)), Rate: hist.Rate}
	for ord := range hist.Counts {
		var sum float64
		var cells int
		grid.Neighborhood(grid.Unflatten(ord), 1, func(o int) {
			sum += hist.Counts[o]
			cells++
		})
		out.Counts[ord] = sum / float64(cells)
	}
	return out
}

// refineByCost prices each cluster with its selected detector and splits
// clusters whose modeled cost exceeds the per-reducer cost budget. Splits
// are axis-aligned at mini-bucket boundaries; counts are recomputed exactly
// from the histogram.
func refineByCost(hist *sample.Histogram, opts Options, clusters []dshc.Cluster) []Partition {
	// Select and price each candidate by the mixed-density model; on the
	// density-homogeneous partitions DSHC emits this coincides with
	// Corollary 4.3 / Lemma 4.1-4.2 on the aggregate profile.
	price := func(rect geom.Rect, count float64) (detect.Kind, float64) {
		best := opts.Candidates[0]
		bestCost := mixedCost(hist, rect, best, opts.Params)
		for _, kind := range opts.Candidates[1:] {
			if c := mixedCost(hist, rect, kind, opts.Params); c < bestCost {
				best, bestCost = kind, c
			}
		}
		return best, bestCost
	}

	work := make([]Partition, 0, len(clusters))
	for _, c := range clusters {
		// Recount from the exact histogram: clustering may have run on a
		// smoothed copy.
		count := countInRect(hist, c.Rect)
		algo, estCost := price(c.Rect, count)
		work = append(work, Partition{Rect: c.Rect, EstCount: count, Algo: algo, EstCost: estCost})
	}

	for pass := 0; pass < 10; pass++ {
		var total float64
		for _, p := range work {
			total += p.EstCost
		}
		// Two budgets: a partition above balanceBudget makes a balanced
		// allocation impossible and must split; one above grainBudget
		// splits only if the cost model says the halves are genuinely
		// cheaper (true for Nested-Loop, whose trial count grows with the
		// candidate-pool size; false for the linear Cell-Based regimes,
		// where splitting only adds supporting-area duplication).
		balanceBudget := total / float64(opts.NumReducers)
		grainBudget := total / float64(opts.NumPartitions)
		split := false
		next := work[:0:0]
		for _, p := range work {
			if p.EstCost <= grainBudget {
				next = append(next, p)
				continue
			}
			left, right, ok := bisectAtBucket(hist, p.Rect)
			if !ok {
				next = append(next, p) // single mini bucket: indivisible
				continue
			}
			lCount := countInRect(hist, left)
			rCount := countInRect(hist, right)
			lAlgo, lCost := price(left, lCount)
			rAlgo, rCost := price(right, rCount)
			if p.EstCost > balanceBudget || lCost+rCost < 0.95*p.EstCost {
				split = true
				next = append(next,
					Partition{Rect: left, EstCount: lCount, Algo: lAlgo, EstCost: lCost},
					Partition{Rect: right, EstCount: rCount, Algo: rAlgo, EstCost: rCost})
			} else {
				next = append(next, p)
			}
		}
		work = next
		if !split {
			break
		}
	}
	return work
}

// bisectAtBucket splits rect at the mini-bucket boundary nearest its middle
// along its widest (in buckets) dimension. It reports false if the rect
// spans a single bucket in every dimension.
func bisectAtBucket(hist *sample.Histogram, rect geom.Rect) (left, right geom.Rect, ok bool) {
	grid := hist.Grid
	bestDim, bestSpan := -1, 1
	var lo, hi int
	for dim := 0; dim < rect.Dim(); dim++ {
		w := grid.CellWidth(dim)
		l := int(math.Round((rect.Min[dim] - grid.Domain.Min[dim]) / w))
		h := int(math.Round((rect.Max[dim] - grid.Domain.Min[dim]) / w))
		if h-l > bestSpan {
			bestDim, bestSpan = dim, h-l
			lo, hi = l, h
		}
	}
	if bestDim < 0 {
		return geom.Rect{}, geom.Rect{}, false
	}
	mid := grid.Boundary(bestDim, (lo+hi)/2)
	left, right = rect.Clone(), rect.Clone()
	left.Max[bestDim] = mid
	right.Min[bestDim] = mid
	return left, right, true
}

// countInRect sums the histogram buckets whose centers fall inside rect
// (exact for bucket-aligned rectangles).
func countInRect(hist *sample.Histogram, rect geom.Rect) float64 {
	grid := hist.Grid
	var total float64
	for ord := 0; ord < grid.NumCells(); ord++ {
		c := hist.BucketCount(ord)
		if c == 0 {
			continue
		}
		if rect.Contains(grid.CellRect(grid.Unflatten(ord)).Center()) {
			total += c
		}
	}
	return total
}

// mixedCost prices a detector on a (possibly mixed-density) region by
// integrating the per-point cost models over the mini buckets inside rect,
// instead of treating the region as one uniform blob. The distinction
// matters for skewed partitions: Lemma 4.2 prices a region by its *average*
// density, but a dense partition with a sparse fringe pays the full
// Nested-Loop fallback for every fringe point — a cost the whole-region
// model misses entirely.
func mixedCost(hist *sample.Histogram, rect geom.Rect, kind detect.Kind, params detect.Params) float64 {
	grid := hist.Grid
	dim := grid.Domain.Dim()
	poolCount := countInRect(hist, rect)
	if poolCount == 0 {
		return 0
	}
	regime := cost.RegimeClass(dim, params)

	var total float64
	for ord := 0; ord < grid.NumCells(); ord++ {
		c := hist.BucketCount(ord)
		if c == 0 {
			continue
		}
		if !rect.Contains(grid.CellRect(grid.Unflatten(ord)).Center()) {
			continue
		}
		density := hist.BucketDensity(ord)
		var perPoint float64
		switch kind {
		case detect.NestedLoop:
			perPoint = cost.PerPointTrials(density, poolCount, dim, params)
		case detect.CellBased:
			// Indexing plus, for intermediate-regime buckets, the
			// full-pool Nested-Loop fallback of Lemma 4.2 Eq. (3); plus the
			// high-dimensional neighborhood-enumeration overhead (zero in
			// low dimension, where Lemma 4.2 is exact).
			perPoint = 1 + cost.GridEnumExcess(dim, poolCount)
			if regime(density) == 2 {
				perPoint += cost.PerPointTrials(density, poolCount, dim, params)
			}
		case detect.CellBasedL2:
			perPoint = 1 + cost.GridEnumExcess(dim, poolCount)
			if regime(density) == 2 {
				ring := ringPopulation(dim, params, density)
				trials := cost.PerPointTrials(density, poolCount, dim, params)
				if ring < trials {
					trials = ring
				}
				perPoint += trials
			}
		case detect.BruteForce:
			perPoint = poolCount
		case detect.KDTree:
			perPoint = cost.KDPerQuery(poolCount, dim, params)
		case detect.PGraph:
			// The geometric lambda underflows in high dimension; the
			// histogram's empirical pair statistic, rescaled from the
			// global average to this bucket's density, recovers the true
			// clumping at radius r. Take whichever is larger.
			lambda := cost.ExpectedNeighbors(density, dim, params.R)
			if emp, ok := hist.AvgNeighbors(params.R); ok {
				if g := globalDensity(hist); g > 0 {
					if scaled := emp * (density / g); scaled > lambda {
						lambda = scaled
					}
				}
			}
			perPoint = cost.ProxGraphPerPoint(lambda, poolCount, params)
		default:
			perPoint = cost.Estimate(kind, cost.PartitionProfile{
				Cardinality: poolCount, Area: rect.AreaEps(1e-12), Dim: dim,
			}, params) / poolCount
		}
		total += c * perPoint
	}
	return total
}

// globalDensity is the histogram's whole-domain average density, the
// baseline the empirical neighbor statistic is rescaled from.
func globalDensity(hist *sample.Histogram) float64 {
	vol := hist.Grid.Domain.AreaEps(1e-12)
	if vol <= 0 {
		return 0
	}
	return hist.EstimatedTotal() / vol
}

// ringPopulation is the expected point count of the L2 block around a cell
// at the given local density.
func ringPopulation(dim int, params detect.Params, density float64) float64 {
	cellVol := math.Pow(params.R/(2*math.Sqrt(float64(dim))), float64(dim))
	l2Side := 2*math.Ceil(2*math.Sqrt(float64(dim))) + 1
	return math.Pow(l2Side, float64(dim)) * cellVol * density
}

// ---------------------------------------------------------------------------
// Shared helpers.

// region is a sub-box of the histogram grid in bucket coordinates
// (half-open index ranges per dimension).
type region struct {
	lo, hi []int // hi exclusive
}

func (r region) splittableDim() int {
	best, extent := -1, 1
	for i := range r.lo {
		if e := r.hi[i] - r.lo[i]; e > extent {
			best, extent = i, e
		}
	}
	return best
}

// splitByWeight greedily bisects the heaviest region at its weighted median
// until the target partition count is reached, returning the region
// rectangles in domain coordinates.
func splitByWeight(hist *sample.Histogram, target int, weight func(count float64, rect geom.Rect) float64) []geom.Rect {
	grid := hist.Grid
	d := grid.Domain.Dim()

	full := region{lo: make([]int, d), hi: append([]int(nil), grid.Dims...)}
	regions := []region{full}

	regionRect := func(r region) geom.Rect {
		min := make([]float64, d)
		max := make([]float64, d)
		for i := 0; i < d; i++ {
			min[i] = grid.Boundary(i, r.lo[i])
			max[i] = grid.Boundary(i, r.hi[i])
		}
		return geom.Rect{Min: min, Max: max}
	}
	regionCount := func(r region) float64 {
		var total float64
		idx := append([]int(nil), r.lo...)
		for {
			total += hist.BucketCount(grid.Flatten(idx))
			// Increment the odometer.
			i := d - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < r.hi[i] {
					break
				}
				idx[i] = r.lo[i]
			}
			if i < 0 {
				return total
			}
		}
	}
	regionWeight := func(r region) float64 { return weight(regionCount(r), regionRect(r)) }

	for len(regions) < target {
		// Pick the heaviest splittable region.
		best, bestW := -1, -1.0
		for i, r := range regions {
			if r.splittableDim() < 0 {
				continue
			}
			if w := regionWeight(r); w > bestW {
				best, bestW = i, w
			}
		}
		if best < 0 {
			break // nothing splittable
		}
		r := regions[best]
		dim := r.splittableDim()

		// Weighted median along dim: the split index that best halves the
		// region's count.
		half := regionCount(r) / 2
		cut := r.lo[dim] + 1
		var acc float64
		for s := r.lo[dim]; s < r.hi[dim]-1; s++ {
			slice := region{lo: append([]int(nil), r.lo...), hi: append([]int(nil), r.hi...)}
			slice.lo[dim], slice.hi[dim] = s, s+1
			acc += regionCount(slice)
			cut = s + 1
			if acc >= half {
				break
			}
		}
		left := region{lo: append([]int(nil), r.lo...), hi: append([]int(nil), r.hi...)}
		right := region{lo: append([]int(nil), r.lo...), hi: append([]int(nil), r.hi...)}
		left.hi[dim] = cut
		right.lo[dim] = cut
		regions[best] = left
		regions = append(regions, right)
	}

	rects := make([]geom.Rect, len(regions))
	for i, r := range regions {
		rects[i] = regionRect(r)
	}
	return rects
}

// assemble builds a Plan from partition rectangles, filling counts from the
// histogram. Supporting areas are enabled (SupportR = r).
func assemble(name string, hist *sample.Histogram, opts Options, rects []geom.Rect) *Plan {
	pl := &Plan{Name: name, Domain: hist.Grid.Domain.Clone(), NumReducers: opts.NumReducers, SupportR: opts.Params.R, ExactSupport: opts.ExactSupport}
	for i, r := range rects {
		pl.Partitions = append(pl.Partitions, Partition{ID: i, Rect: r})
	}
	fillCounts(pl, hist)
	return pl
}

// fillCounts distributes the histogram's bucket counts onto partitions by
// bucket-center membership. Planner rectangles align with bucket
// boundaries, so the assignment is exact for planner-generated plans.
func fillCounts(pl *Plan, hist *sample.Histogram) {
	grid := hist.Grid
	for ord := 0; ord < grid.NumCells(); ord++ {
		c := hist.BucketCount(ord)
		if c == 0 {
			continue
		}
		center := grid.CellRect(grid.Unflatten(ord)).Center()
		core, _ := pl.Locate(center)
		pl.Partitions[core].EstCount += c
	}
}

// applyAllocation writes a bin-packing assignment into the plan.
func applyAllocation(pl *Plan, a *binpack.Assignment) {
	for i := range pl.Partitions {
		pl.Partitions[i].Reducer = a.ItemBin[pl.Partitions[i].ID]
	}
}
