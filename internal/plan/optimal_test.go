package plan

import (
	"math"
	"math/rand"
	"testing"

	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/sample"
)

func tinyHistogram(t *testing.T, n int, fill func(x, y int) float64) *sample.Histogram {
	t.Helper()
	domain := geom.NewRect([]float64{0, 0}, []float64{float64(10 * n), float64(10 * n)})
	grid := geom.NewGrid(domain, []int{n, n})
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			h.Counts[grid.Flatten([]int{x, y})] = fill(x, y)
		}
	}
	return h
}

func TestExhaustiveValidPlan(t *testing.T) {
	h := tinyHistogram(t, 3, func(x, y int) float64 { return float64(10 + x*50 + y*5) })
	opts := Options{NumReducers: 2, NumPartitions: 5, Params: testParams}
	pl, err := Exhaustive(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pl.Partitions) > 5 {
		t.Errorf("partition budget exceeded: %d", len(pl.Partitions))
	}
}

// TestExhaustiveIsALowerBound: no tiling-based planner can beat the
// exhaustive optimum under the same cost model; specifically the single
// whole-domain partition and the per-bucket tiling must both be >= it.
func TestExhaustiveIsALowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		h := tinyHistogram(t, 3, func(x, y int) float64 {
			return math.Floor(math.Exp(rng.NormFloat64()*1.5) * 20)
		})
		opts := Options{NumReducers: 3, NumPartitions: 9, Params: testParams}
		opt, err := Exhaustive(h, opts)
		if err != nil {
			t.Fatal(err)
		}

		wholeDomain := mixedCost(h, h.Grid.Domain, detect.NestedLoop, testParams)
		if cb := mixedCost(h, h.Grid.Domain, detect.CellBased, testParams); cb < wholeDomain {
			wholeDomain = cb
		}
		if opt.MaxEstCost() > wholeDomain+1e-9 {
			t.Errorf("trial %d: exhaustive %g worse than the trivial single partition %g",
				trial, opt.MaxEstCost(), wholeDomain)
		}
	}
}

// TestDMTNearOptimalOnTinyInstances: the DMT heuristic must land within a
// small constant factor of the exhaustive optimum of Def. 3.5, on random
// tiny instances where the optimum is computable. This is the empirical
// justification for the heuristic that Sec. III-C's complexity analysis
// demands.
func TestDMTNearOptimalOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var worst float64
	for trial := 0; trial < 8; trial++ {
		h := tinyHistogram(t, 3, func(x, y int) float64 {
			return math.Floor(math.Exp(rng.NormFloat64()*2) * 15)
		})
		opts := Options{NumReducers: 2, NumPartitions: 9, Params: testParams}
		opt, err := Exhaustive(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		dmt, err := DMT.Build(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		if opt.MaxEstCost() == 0 {
			continue
		}
		ratio := dmt.MaxEstCost() / opt.MaxEstCost()
		if ratio > worst {
			worst = ratio
		}
		if ratio > 3 {
			t.Errorf("trial %d: DMT cost %g is %.1fx the exhaustive optimum %g",
				trial, dmt.MaxEstCost(), ratio, opt.MaxEstCost())
		}
	}
	t.Logf("worst DMT/optimal ratio over tiny instances: %.2f", worst)
}

func TestExhaustiveRejectsLargeInstances(t *testing.T) {
	h := tinyHistogram(t, 5, func(x, y int) float64 { return 1 })
	if _, err := Exhaustive(h, Options{NumReducers: 2, Params: testParams}); err == nil {
		t.Error("25-bucket instance accepted")
	}
}

func TestExhaustivePartitionBudgetBinds(t *testing.T) {
	h := tinyHistogram(t, 2, func(x, y int) float64 { return float64(1 + x + 10*y) })
	pl, err := Exhaustive(h, Options{NumReducers: 1, NumPartitions: 1, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Partitions) != 1 {
		t.Errorf("budget 1 produced %d partitions", len(pl.Partitions))
	}
}
