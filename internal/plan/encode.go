package plan

import (
	"encoding/json"
	"fmt"

	"dod/internal/detect"
	"dod/internal/geom"
)

// The JSON plan format lets operators inspect, archive, and diff the
// output of the preprocessing stage (the paper's Fig. 6 hands the plan
// from the preprocessing job to the detection job — in a production
// deployment that hand-off is a file in the distributed cache).

// planJSON is the serialized form of a Plan.
type planJSON struct {
	Name        string          `json:"name"`
	Domain      rectJSON        `json:"domain"`
	NumReducers int             `json:"numReducers"`
	SupportR    float64         `json:"supportR"`
	Exact       bool            `json:"exactSupport,omitempty"`
	Partitions  []partitionJSON `json:"partitions"`
}

type rectJSON struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

type partitionJSON struct {
	ID       int      `json:"id"`
	Rect     rectJSON `json:"rect"`
	EstCount float64  `json:"estCount"`
	EstCost  float64  `json:"estCost"`
	Algo     string   `json:"algo"`
	Reducer  int      `json:"reducer"`
}

// algoNames maps detector names back to kinds for decoding.
var algoNames = map[string]detect.Kind{}

func init() {
	for _, k := range []detect.Kind{
		detect.Unspecified, detect.BruteForce, detect.NestedLoop,
		detect.CellBased, detect.KDTree, detect.CellBasedL2, detect.Pivot,
		detect.PGraph, detect.SSample,
	} {
		algoNames[k.String()] = k
	}
}

// MarshalJSON serializes the plan (without its lookup index).
func (pl *Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{
		Name:        pl.Name,
		Domain:      rectJSON{Min: pl.Domain.Min, Max: pl.Domain.Max},
		NumReducers: pl.NumReducers,
		SupportR:    pl.SupportR,
		Exact:       pl.ExactSupport,
	}
	for _, p := range pl.Partitions {
		out.Partitions = append(out.Partitions, partitionJSON{
			ID:       p.ID,
			Rect:     rectJSON{Min: p.Rect.Min, Max: p.Rect.Max},
			EstCount: p.EstCount,
			EstCost:  p.EstCost,
			Algo:     p.Algo.String(),
			Reducer:  p.Reducer,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a plan serialized by MarshalJSON. The restored
// plan is validated and immediately usable (the lookup index rebuilds
// lazily).
func (pl *Plan) UnmarshalJSON(data []byte) error {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	restored := Plan{
		Name:         in.Name,
		Domain:       geom.Rect{Min: in.Domain.Min, Max: in.Domain.Max},
		NumReducers:  in.NumReducers,
		SupportR:     in.SupportR,
		ExactSupport: in.Exact,
	}
	for _, p := range in.Partitions {
		algo, ok := algoNames[p.Algo]
		if !ok {
			return fmt.Errorf("plan: unknown algorithm %q in serialized plan", p.Algo)
		}
		restored.Partitions = append(restored.Partitions, Partition{
			ID:       p.ID,
			Rect:     geom.Rect{Min: p.Rect.Min, Max: p.Rect.Max},
			EstCount: p.EstCount,
			EstCost:  p.EstCost,
			Algo:     algo,
			Reducer:  p.Reducer,
		})
	}
	if err := restored.Validate(); err != nil {
		return err
	}
	pl.Name = restored.Name
	pl.Domain = restored.Domain
	pl.NumReducers = restored.NumReducers
	pl.SupportR = restored.SupportR
	pl.ExactSupport = restored.ExactSupport
	pl.Partitions = restored.Partitions
	pl.index.Store(nil)
	return nil
}
