package plan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dod/internal/cost"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/sample"
)

// randomHistogram builds a bounded random histogram with log-normal bucket
// counts (heavy skew).
func randomHistogram(seed int64) *sample.Histogram {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(12)
	side := 20 + rng.Float64()*200
	domain := geom.NewRect([]float64{0, 0}, []float64{side, side})
	grid := geom.NewGrid(domain, []int{n, n})
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for i := range h.Counts {
		if rng.Float64() < 0.2 {
			continue // empty bucket
		}
		h.Counts[i] = math.Floor(math.Exp(rng.NormFloat64()*2) * 20)
	}
	return h
}

// TestPlannersValidOnRandomHistogramsQuick: every planner must produce a
// valid plan (disjoint tiling, complete reducer assignment, preserved
// counts) on arbitrary skewed histograms.
func TestPlannersValidOnRandomHistogramsQuick(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHistogram(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		opts := Options{
			NumReducers:   1 + rng.Intn(8),
			NumPartitions: 1 + rng.Intn(40),
			Params:        detect.Params{R: 0.5 + rng.Float64()*10, K: 1 + rng.Intn(6)},
			Detector:      detect.CellBased,
		}
		for _, planner := range allPlanners {
			pl, err := planner.Build(h, opts)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, planner.Name(), err)
				return false
			}
			if err := pl.Validate(); err != nil {
				t.Logf("seed %d: %s: %v", seed, planner.Name(), err)
				return false
			}
			var total float64
			for _, p := range pl.Partitions {
				total += p.EstCount
			}
			if math.Abs(total-h.EstimatedTotal()) > 1e-6*(total+1) {
				t.Logf("seed %d: %s: count leak %g vs %g", seed, planner.Name(), total, h.EstimatedTotal())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLocateTotalityQuick: for every planner and random point (inside or
// outside the domain), Locate returns a valid core partition and supports
// consistent with the configured criterion.
func TestLocateTotalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHistogram(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x10ca7e))
		opts := Options{
			NumReducers:   2,
			NumPartitions: 1 + rng.Intn(25),
			Params:        detect.Params{R: 1 + rng.Float64()*8, K: 3},
			Detector:      detect.NestedLoop,
			ExactSupport:  rng.Intn(2) == 0,
		}
		side := h.Grid.Domain.Max[0]
		for _, planner := range allPlanners {
			pl, err := planner.Build(h, opts)
			if err != nil {
				return false
			}
			for trial := 0; trial < 50; trial++ {
				p := geom.Point{Coords: []float64{
					rng.Float64()*side*1.2 - side*0.1, // 10% outside either end
					rng.Float64()*side*1.2 - side*0.1,
				}}
				core, supports := pl.Locate(p)
				if core < 0 || core >= len(pl.Partitions) {
					t.Logf("seed %d: %s: core %d out of range", seed, planner.Name(), core)
					return false
				}
				for _, s := range supports {
					if s == core || s < 0 || s >= len(pl.Partitions) {
						t.Logf("seed %d: %s: bad support %d", seed, planner.Name(), s)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestMixedCostNonNegativeQuick: the mixed-density pricing is finite and
// non-negative for every detector on random histograms and rects.
func TestMixedCostNonNegativeQuick(t *testing.T) {
	kinds := []detect.Kind{detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree, detect.Pivot, detect.PGraph, detect.SSample}
	f := func(seed int64) bool {
		h := randomHistogram(seed)
		rng := rand.New(rand.NewSource(seed ^ 0xc057))
		params := detect.Params{R: 0.5 + rng.Float64()*10, K: 1 + rng.Intn(6)}
		// A random sub-rect of the domain.
		side := h.Grid.Domain.Max[0]
		x1, y1 := rng.Float64()*side/2, rng.Float64()*side/2
		rect := geom.NewRect([]float64{x1, y1}, []float64{x1 + rng.Float64()*side/2, y1 + rng.Float64()*side/2})
		for _, kind := range kinds {
			c := mixedCost(h, rect, kind, params)
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				t.Logf("seed %d: %v cost %g", seed, kind, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMixedCostTotalOnDegenerateRectsQuick: planner pricing must stay
// total — finite (or +Inf, but never NaN) and non-negative — on the
// degenerate rects bisection can produce: zero-area slivers, single-point
// rects, and rects collapsed onto a histogram cell boundary. The
// zero-area density edge used to surface as Inf·0 = NaN inside the model
// comparisons, making the plan depend on NaN ordering.
func TestMixedCostTotalOnDegenerateRectsQuick(t *testing.T) {
	kinds := []detect.Kind{detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree, detect.Pivot, detect.PGraph, detect.SSample}
	f := func(seed int64) bool {
		h := randomHistogram(seed)
		rng := rand.New(rand.NewSource(seed ^ 0xdead))
		params := detect.Params{R: 0.5 + rng.Float64()*10, K: 1 + rng.Intn(6)}
		side := h.Grid.Domain.Max[0]
		x := rng.Float64() * side
		y := rng.Float64() * side
		degenerate := []geom.Rect{
			geom.NewRect([]float64{x, y}, []float64{x, y}),       // single point
			geom.NewRect([]float64{x, 0}, []float64{x, side}),    // zero-width sliver
			geom.NewRect([]float64{0, y}, []float64{side, y}),    // zero-height sliver
			geom.NewRect([]float64{0, 0}, []float64{side, side}), // full domain (control)
			geom.NewRect([]float64{x, y}, []float64{x + 1e-12, y + 1e-12}),
		}
		for _, rect := range degenerate {
			for _, kind := range kinds {
				c := mixedCost(h, rect, kind, params)
				if c < 0 || math.IsNaN(c) {
					t.Logf("seed %d: %v on %v cost %g", seed, kind, rect, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEstimateTotalOnDegenerateProfilesQuick mirrors the rect property at
// the profile level: zero-area and single-point partitions must price to
// a non-negative, non-NaN number for every kind.
func TestEstimateTotalOnDegenerateProfilesQuick(t *testing.T) {
	kinds := []detect.Kind{detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree, detect.Pivot, detect.PGraph, detect.SSample}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := detect.Params{R: 0.5 + rng.Float64()*10, K: 1 + rng.Intn(6)}
		profiles := []cost.PartitionProfile{
			{Cardinality: 0, Area: 0, Dim: 2},
			{Cardinality: 1, Area: 0, Dim: 2},
			{Cardinality: float64(1 + rng.Intn(10000)), Area: 0, Dim: 2},
			{Cardinality: 1, Area: rng.Float64() * 1e6, Dim: 2},
			{Cardinality: float64(rng.Intn(10000)), Area: 0, Dim: 32},
		}
		for _, p := range profiles {
			for _, kind := range kinds {
				c := cost.Estimate(kind, p, params)
				if c < 0 || math.IsNaN(c) {
					t.Logf("seed %d: %v on %+v cost %g", seed, kind, p, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
