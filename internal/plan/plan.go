// Package plan defines partition plans — the output of DOD's preprocessing
// stage (Fig. 6) — and the planners that generate them: the Domain baseline,
// uniSpace, DDriven, CDriven, and the full multi-tactic DMT (Sec. VI-A's
// experimental methodology names).
//
// A Plan bundles the paper's three preprocessing outputs:
//
//   - the partition plan (disjoint rectangles tiling the domain), consumed
//     by mappers via Locate;
//   - the algorithm plan (one detector per partition, Def. 3.4);
//   - the allocation plan (partition → reducer, Step 3 of Sec. V-A),
//     consumed by the MapReduce partitioner function.
package plan

import (
	"fmt"
	"math"
	"sync/atomic"

	"dod/internal/cost"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/sample"
)

// Partition is one element of a partition plan.
type Partition struct {
	ID       int
	Rect     geom.Rect
	EstCount float64     // estimated cardinality (from the sample histogram)
	EstCost  float64     // modeled detection cost under Algo
	Algo     detect.Kind // the algorithm plan entry for this partition
	Reducer  int         // the allocation plan entry for this partition
}

// Profile returns the cost-model profile of the partition.
func (p Partition) Profile() cost.PartitionProfile {
	return cost.PartitionProfile{
		Cardinality: p.EstCount,
		Area:        p.Rect.AreaEps(1e-12),
		Dim:         p.Rect.Dim(),
	}
}

// Plan is a complete multi-tactic plan.
type Plan struct {
	Name        string
	Domain      geom.Rect
	Partitions  []Partition
	NumReducers int
	// SupportR is the supporting-area extension distance (Def. 3.3). Zero
	// disables supporting areas — the Domain baseline — forcing a second
	// verification job.
	SupportR float64
	// ExactSupport switches from Def. 3.3's rectangular r-expansion to the
	// exact Def. 3.2 criterion: a point supports a partition iff its
	// distance to the partition rectangle is at most r. The exact region
	// has rounded corners, so it strictly shrinks the replicated set at
	// the price of a distance computation per candidate (the ablation
	// benchmark quantifies the trade).
	ExactSupport bool

	index atomic.Pointer[overlayIndex]
}

// Validate checks the structural contract: partitions are non-empty,
// pairwise interior-disjoint, and tile the domain.
func (pl *Plan) Validate() error {
	if len(pl.Partitions) == 0 {
		return fmt.Errorf("plan %s: no partitions", pl.Name)
	}
	var area float64
	for i, a := range pl.Partitions {
		if a.ID != i {
			return fmt.Errorf("plan %s: partition %d has ID %d", pl.Name, i, a.ID)
		}
		if a.Reducer < 0 || a.Reducer >= pl.NumReducers {
			return fmt.Errorf("plan %s: partition %d assigned to reducer %d of %d", pl.Name, i, a.Reducer, pl.NumReducers)
		}
		area += a.Rect.Area()
		for _, b := range pl.Partitions[i+1:] {
			if interiorOverlap(a.Rect, b.Rect) {
				return fmt.Errorf("plan %s: partitions %d and %d overlap", pl.Name, a.ID, b.ID)
			}
		}
	}
	if dom := pl.Domain.Area(); math.Abs(area-dom) > 1e-6*(dom+1) {
		return fmt.Errorf("plan %s: partition area %g != domain area %g", pl.Name, area, dom)
	}
	return nil
}

// rectDist2 is the squared distance from p to the nearest point of r.
func rectDist2(r geom.Rect, p geom.Point) float64 {
	var s float64
	for i := range r.Min {
		v := p.Coords[i]
		switch {
		case v < r.Min[i]:
			d := r.Min[i] - v
			s += d * d
		case v > r.Max[i]:
			d := v - r.Max[i]
			s += d * d
		}
	}
	return s
}

func interiorOverlap(a, b geom.Rect) bool {
	for i := range a.Min {
		if a.Max[i] <= b.Min[i] || b.Max[i] <= a.Min[i] {
			return false
		}
	}
	return true
}

// Locate maps a point to its core partition and, when supporting areas are
// enabled, to every partition holding it as a support point (Fig. 3's map
// function). Points outside the domain are clamped for core assignment.
func (pl *Plan) Locate(p geom.Point) (core int, supports []int) {
	ix := pl.index.Load()
	if ix == nil {
		ix = pl.buildIndex()
		pl.index.CompareAndSwap(nil, ix) // concurrent builds are identical
	}
	clamped := pl.Domain.Clamp(p)
	cands := ix.candidates(clamped)
	core = -1
	for _, id := range cands.core {
		if pl.containsHalfOpen(pl.Partitions[id].Rect, clamped) {
			core = id
			break
		}
	}
	if core == -1 {
		// Numeric edge: fall back to a full scan (still deterministic).
		for _, part := range pl.Partitions {
			if pl.containsHalfOpen(part.Rect, clamped) {
				core = part.ID
				break
			}
		}
	}
	if core == -1 {
		// Last resort for pathological float edges: the nearest partition.
		best := math.Inf(1)
		for _, part := range pl.Partitions {
			if d := rectDist2(part.Rect, clamped); d < best {
				best, core = d, part.ID
			}
		}
	}
	if pl.SupportR > 0 {
		for _, id := range cands.support {
			if id == core {
				continue
			}
			if pl.isSupport(pl.Partitions[id].Rect, p) {
				supports = append(supports, id)
			}
		}
	}
	return core, supports
}

// isSupport applies the configured supporting-area criterion.
func (pl *Plan) isSupport(rect geom.Rect, p geom.Point) bool {
	if pl.ExactSupport {
		return rectDist2(rect, p) <= pl.SupportR*pl.SupportR
	}
	return rect.Expand(pl.SupportR).Contains(p)
}

// containsHalfOpen treats partition boundaries as half-open [min, max) so a
// shared boundary point belongs to exactly one partition, except on the
// domain's upper boundary where the interval closes.
func (pl *Plan) containsHalfOpen(r geom.Rect, p geom.Point) bool {
	for i := range r.Min {
		v := p.Coords[i]
		if v < r.Min[i] {
			return false
		}
		if v >= r.Max[i] && !(v == pl.Domain.Max[i] && r.Max[i] == pl.Domain.Max[i]) {
			return false
		}
	}
	return true
}

// ReducerFor returns the reducer assigned to a partition, for use as the
// job's MapReduce partitioner.
func (pl *Plan) ReducerFor(partitionID uint64) int {
	return pl.Partitions[partitionID].Reducer
}

// MaxEstCost returns cost(P(D)) of Def. 3.4: the modeled cost of the most
// loaded reducer.
func (pl *Plan) MaxEstCost() float64 {
	loads := make([]float64, pl.NumReducers)
	for _, p := range pl.Partitions {
		loads[p.Reducer] += p.EstCost
	}
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// overlayIndex accelerates Locate with a uniform grid over the domain;
// each cell lists the partitions that may contain (core) or support-cover
// points falling in the cell.
type overlayIndex struct {
	grid    *geom.Grid
	core    [][]int
	support [][]int
}

type candidateSet struct {
	core    []int
	support []int
}

func (pl *Plan) buildIndex() *overlayIndex {
	// Resolution: aim for a few partitions per cell.
	perDim := int(math.Ceil(math.Sqrt(float64(len(pl.Partitions))))) * 2
	if perDim < 4 {
		perDim = 4
	}
	if perDim > 256 {
		perDim = 256
	}
	// High dimension: perDim^d cells overflows past a handful of
	// dimensions, so lower the resolution until the total fits.
	dims := sample.DimsFor(pl.Domain.Dim(), perDim)
	grid := geom.NewGrid(pl.Domain, dims)
	idx := &overlayIndex{
		grid:    grid,
		core:    make([][]int, grid.NumCells()),
		support: make([][]int, grid.NumCells()),
	}
	for ord := 0; ord < grid.NumCells(); ord++ {
		cellRect := grid.CellRect(grid.Unflatten(ord))
		for _, part := range pl.Partitions {
			if part.Rect.Overlaps(cellRect) {
				idx.core[ord] = append(idx.core[ord], part.ID)
			}
			if pl.SupportR > 0 && part.Rect.Expand(pl.SupportR).Overlaps(cellRect) {
				idx.support[ord] = append(idx.support[ord], part.ID)
			}
		}
	}
	return idx
}

func (ix *overlayIndex) candidates(p geom.Point) candidateSet {
	ord := ix.grid.CellOrdinal(p)
	return candidateSet{core: ix.core[ord], support: ix.support[ord]}
}
