package plan

import (
	"math"
	"math/rand"
	"testing"

	"dod/internal/cost"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/sample"
)

var testParams = detect.Params{R: 5, K: 4}

// skewedHistogram builds a histogram with a dense block, a medium band,
// and sparse remainder over [0,100]².
func skewedHistogram(t *testing.T) *sample.Histogram {
	t.Helper()
	domain := geom.NewRect([]float64{0, 0}, []float64{100, 100})
	grid := geom.NewGrid(domain, []int{10, 10})
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			var c float64
			switch {
			case x < 3 && y < 3:
				c = 5000 // dense city block
			case x < 6:
				c = 300 // suburban band
			default:
				c = 10 // rural
			}
			h.Counts[grid.Flatten([]int{x, y})] = c
		}
	}
	return h
}

// uniformHistogram builds a flat histogram.
func uniformHistogram(t *testing.T, perBucket float64) *sample.Histogram {
	t.Helper()
	domain := geom.NewRect([]float64{0, 0}, []float64{100, 100})
	grid := geom.NewGrid(domain, []int{8, 8})
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for i := range h.Counts {
		h.Counts[i] = perBucket
	}
	return h
}

var allPlanners = []Planner{Domain, UniSpace, DDriven, CDriven, DMT}

func buildAll(t *testing.T, h *sample.Histogram, opts Options) map[string]*Plan {
	t.Helper()
	out := map[string]*Plan{}
	for _, p := range allPlanners {
		pl, err := p.Build(h, opts)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		out[p.Name()] = pl
	}
	return out
}

func TestAllPlannersProduceValidPlans(t *testing.T) {
	h := skewedHistogram(t)
	opts := Options{NumReducers: 4, NumPartitions: 16, Params: testParams, Detector: detect.CellBased}
	plans := buildAll(t, h, opts)
	for name, pl := range plans {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if pl.Name != name {
			t.Errorf("plan name %q != planner name %q", pl.Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Domain", "uniSpace", "DDriven", "CDriven", "DMT"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus planner name accepted")
	}
}

func TestDomainPlannerHasNoSupport(t *testing.T) {
	h := uniformHistogram(t, 100)
	pl, err := Domain.Build(h, Options{NumReducers: 2, NumPartitions: 4, Params: testParams, Detector: detect.NestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	if pl.SupportR != 0 {
		t.Errorf("Domain SupportR = %g, want 0", pl.SupportR)
	}
	_, supports := pl.Locate(geom.Point{Coords: []float64{50, 50}})
	if len(supports) != 0 {
		t.Errorf("Domain plan returned supports %v", supports)
	}
}

func TestLocateCoreUniqueAndCovering(t *testing.T) {
	h := skewedHistogram(t)
	opts := Options{NumReducers: 4, NumPartitions: 16, Params: testParams, Detector: detect.CellBased}
	rng := rand.New(rand.NewSource(3))
	for name, pl := range buildAll(t, h, opts) {
		for trial := 0; trial < 2000; trial++ {
			p := geom.Point{ID: uint64(trial), Coords: []float64{rng.Float64() * 100, rng.Float64() * 100}}
			core, _ := pl.Locate(p)
			if core < 0 || core >= len(pl.Partitions) {
				t.Fatalf("%s: Locate returned core %d", name, core)
			}
			// Exactly one partition may claim the point as core.
			claims := 0
			for _, part := range pl.Partitions {
				if pl.containsHalfOpen(part.Rect, p) {
					claims++
				}
			}
			if claims != 1 {
				t.Fatalf("%s: point %v claimed by %d partitions", name, p, claims)
			}
		}
	}
}

func TestLocateBoundaryPoints(t *testing.T) {
	h := uniformHistogram(t, 100)
	pl, err := UniSpace.Build(h, Options{NumReducers: 2, NumPartitions: 4, Params: testParams, Detector: detect.NestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	// Interior shared boundary: belongs to exactly one partition.
	onBoundary := geom.Point{Coords: []float64{50, 25}}
	core1, _ := pl.Locate(onBoundary)
	if core1 < 0 {
		t.Fatal("boundary point unassigned")
	}
	// Domain corners must be assigned.
	for _, c := range [][]float64{{0, 0}, {100, 0}, {0, 100}, {100, 100}} {
		core, _ := pl.Locate(geom.Point{Coords: c})
		if core < 0 {
			t.Errorf("corner %v unassigned", c)
		}
	}
	// Out-of-domain points clamp to a valid partition.
	core, _ := pl.Locate(geom.Point{Coords: []float64{-10, 500}})
	if core < 0 {
		t.Error("out-of-domain point unassigned")
	}
}

func TestLocateSupportSemantics(t *testing.T) {
	// Support membership must match Def. 3.3 exactly: p supports partition
	// P iff p is in P's r-expansion but not P's core.
	h := skewedHistogram(t)
	opts := Options{NumReducers: 4, NumPartitions: 12, Params: testParams, Detector: detect.NestedLoop}
	rng := rand.New(rand.NewSource(7))
	for _, planner := range []Planner{UniSpace, DDriven, CDriven, DMT} {
		pl, err := planner.Build(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 1000; trial++ {
			p := geom.Point{Coords: []float64{rng.Float64() * 100, rng.Float64() * 100}}
			core, supports := pl.Locate(p)
			inSupports := map[int]bool{}
			for _, s := range supports {
				if s == core {
					t.Fatalf("%s: core %d repeated in supports", planner.Name(), core)
				}
				if inSupports[s] {
					t.Fatalf("%s: duplicate support %d", planner.Name(), s)
				}
				inSupports[s] = true
			}
			for _, part := range pl.Partitions {
				want := part.ID != core && part.Rect.Expand(testParams.R).Contains(p)
				if inSupports[part.ID] != want {
					t.Fatalf("%s: point %v support of partition %d = %v, want %v",
						planner.Name(), p, part.ID, inSupports[part.ID], want)
				}
			}
		}
	}
}

func TestDDrivenBalancesCardinality(t *testing.T) {
	h := skewedHistogram(t)
	pl, err := DDriven.Build(h, Options{NumReducers: 4, NumPartitions: 32, Params: testParams, Detector: detect.NestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, pl.NumReducers)
	var total float64
	for _, p := range pl.Partitions {
		counts[p.Reducer] += p.EstCount
		total += p.EstCount
	}
	if math.Abs(total-h.EstimatedTotal()) > 1e-6*total {
		t.Fatalf("total %g != histogram %g", total, h.EstimatedTotal())
	}
	mean := total / float64(pl.NumReducers)
	for r, c := range counts {
		if c > 1.6*mean {
			t.Errorf("reducer %d holds %g points, mean %g: cardinality imbalance", r, c, mean)
		}
	}
}

func TestCDrivenBalancesCostBetterThanDDriven(t *testing.T) {
	// On skewed data the cost-driven plan must yield a lower max reducer
	// cost than the cardinality-driven plan (Sec. VI-B's core claim),
	// comparing both under the same cost model.
	h := skewedHistogram(t)
	opts := Options{NumReducers: 8, NumPartitions: 32, Params: testParams, Detector: detect.NestedLoop}
	dd, err := DDriven.Build(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := CDriven.Build(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cd.MaxEstCost() > dd.MaxEstCost() {
		t.Errorf("CDriven max cost %g worse than DDriven %g", cd.MaxEstCost(), dd.MaxEstCost())
	}
}

func TestDMTSelectsDifferentAlgorithmsOnSkewedData(t *testing.T) {
	// The multi-tactic property: on data with dense and intermediate
	// regions, DMT's algorithm plan must contain both candidates.
	h := skewedHistogram(t)
	pl, err := DMT.Build(h, Options{NumReducers: 4, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[detect.Kind]bool{}
	for _, p := range pl.Partitions {
		seen[p.Algo] = true
	}
	if !seen[detect.NestedLoop] || !seen[detect.CellBased] {
		t.Errorf("DMT algorithm plan uses %v; want both Nested-Loop and Cell-Based", seen)
	}
}

func TestDMTAlgorithmPlanMatchesCorollary43(t *testing.T) {
	h := skewedHistogram(t)
	pl, err := DMT.Build(h, Options{NumReducers: 4, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pl.Partitions {
		prof := p.Profile()
		if c := cost.Select(prof, testParams); c != p.Algo {
			// SelectFrom and Select may only disagree on exact cost ties.
			nl := cost.Estimate(detect.NestedLoop, prof, testParams)
			cb := cost.Estimate(detect.CellBased, prof, testParams)
			if nl != cb {
				t.Errorf("partition %d (density %g): algo %v, corollary says %v",
					p.ID, prof.Density(), p.Algo, c)
			}
		}
	}
}

func TestDMTPlanCostNotWorseThanSingleTactic(t *testing.T) {
	h := skewedHistogram(t)
	opts := Options{NumReducers: 8, NumPartitions: 32, Params: testParams}
	optsNL, optsCB := opts, opts
	optsNL.Detector = detect.NestedLoop
	optsCB.Detector = detect.CellBased
	cdNL, err := CDriven.Build(h, optsNL)
	if err != nil {
		t.Fatal(err)
	}
	cdCB, err := CDriven.Build(h, optsCB)
	if err != nil {
		t.Fatal(err)
	}
	dmt, err := DMT.Build(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Min(cdNL.MaxEstCost(), cdCB.MaxEstCost())
	if dmt.MaxEstCost() > best*1.5 {
		t.Errorf("DMT max cost %g much worse than best single tactic %g", dmt.MaxEstCost(), best)
	}
}

func TestGridPlanPartitionCount(t *testing.T) {
	h := uniformHistogram(t, 10)
	pl, err := UniSpace.Build(h, Options{NumReducers: 2, NumPartitions: 16, Params: testParams, Detector: detect.NestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Partitions) != 16 {
		t.Errorf("got %d partitions, want 16", len(pl.Partitions))
	}
}

func TestReducerForMatchesAssignment(t *testing.T) {
	h := skewedHistogram(t)
	pl, err := CDriven.Build(h, Options{NumReducers: 4, NumPartitions: 16, Params: testParams, Detector: detect.CellBased})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pl.Partitions {
		if got := pl.ReducerFor(uint64(p.ID)); got != p.Reducer {
			t.Errorf("ReducerFor(%d) = %d, want %d", p.ID, got, p.Reducer)
		}
	}
}

func TestFillCountsPreservesTotal(t *testing.T) {
	h := skewedHistogram(t)
	for _, planner := range allPlanners {
		pl, err := planner.Build(h, Options{NumReducers: 4, NumPartitions: 16, Params: testParams, Detector: detect.NestedLoop})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, p := range pl.Partitions {
			total += p.EstCount
		}
		if math.Abs(total-h.EstimatedTotal()) > 1e-6*total {
			t.Errorf("%s: partition counts %g != histogram total %g", planner.Name(), total, h.EstimatedTotal())
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	h := uniformHistogram(t, 10)
	pl, err := DMT.Build(h, Options{Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumReducers != 1 {
		t.Errorf("default reducers = %d, want 1", pl.NumReducers)
	}
}
