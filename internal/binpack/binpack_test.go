package binpack

import (
	"math"
	"math/rand"
	"testing"
)

func items(weights ...float64) []Item {
	out := make([]Item, len(weights))
	for i, w := range weights {
		out[i] = Item{ID: i, Weight: w}
	}
	return out
}

// checkComplete verifies every item landed in exactly one bin and loads are
// consistent.
func checkComplete(t *testing.T, in []Item, a *Assignment, bins int) {
	t.Helper()
	if len(a.Bins) != bins || len(a.Loads) != bins {
		t.Fatalf("got %d bins, want %d", len(a.Bins), bins)
	}
	placed := map[int]int{}
	for bin, bs := range a.Bins {
		var load float64
		for _, it := range bs {
			placed[it.ID]++
			load += it.Weight
			if got := a.ItemBin[it.ID]; got != bin {
				t.Errorf("ItemBin[%d] = %d, item found in bin %d", it.ID, got, bin)
			}
		}
		if math.Abs(load-a.Loads[bin]) > 1e-9 {
			t.Errorf("bin %d load %g != recorded %g", bin, load, a.Loads[bin])
		}
	}
	for _, it := range in {
		if placed[it.ID] != 1 {
			t.Errorf("item %d placed %d times", it.ID, placed[it.ID])
		}
	}
}

var allocators = map[string]func([]Item, int) *Assignment{
	"LPT":           LPT,
	"KarmarkarKarp": KarmarkarKarp,
	"RoundRobin":    RoundRobin,
}

func TestAllocatorsPlaceEverything(t *testing.T) {
	in := items(5, 3, 8, 1, 9, 2, 7, 4)
	for name, alloc := range allocators {
		t.Run(name, func(t *testing.T) {
			a := alloc(in, 3)
			checkComplete(t, in, a, 3)
		})
	}
}

func TestLPTPerfectSplit(t *testing.T) {
	// 4,4,3,3,2,2 on 2 bins → 9/9 achievable and LPT finds it.
	a := LPT(items(4, 4, 3, 3, 2, 2), 2)
	if a.MaxLoad() != 9 {
		t.Errorf("MaxLoad = %g, want 9", a.MaxLoad())
	}
	if a.Imbalance() != 1 {
		t.Errorf("Imbalance = %g, want 1", a.Imbalance())
	}
}

func TestLPTWithinApproximationBound(t *testing.T) {
	// LPT is a (4/3 − 1/(3m))-approximation of the optimal makespan; check
	// against the trivial lower bound max(total/m, max item).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(60)
		bins := 1 + rng.Intn(8)
		in := make([]Item, n)
		var total, maxw float64
		for i := range in {
			w := rng.Float64() * 100
			in[i] = Item{ID: i, Weight: w}
			total += w
			if w > maxw {
				maxw = w
			}
		}
		lower := math.Max(total/float64(bins), maxw)
		a := LPT(in, bins)
		bound := lower * (4.0/3.0 - 1.0/(3.0*float64(bins)))
		if a.MaxLoad() > bound+1e-9 {
			t.Fatalf("trial %d: LPT makespan %g exceeds bound %g (lower %g)",
				trial, a.MaxLoad(), bound, lower)
		}
	}
}

func TestKarmarkarKarpNotWorseThanRoundRobinOnSkew(t *testing.T) {
	// Heavily skewed weights: differencing should beat round-robin clearly.
	rng := rand.New(rand.NewSource(5))
	in := make([]Item, 64)
	for i := range in {
		in[i] = Item{ID: i, Weight: math.Exp(rng.NormFloat64() * 2)}
	}
	kk := KarmarkarKarp(in, 8)
	rr := RoundRobin(in, 8)
	checkComplete(t, in, kk, 8)
	if kk.MaxLoad() > rr.MaxLoad() {
		t.Errorf("KK makespan %g worse than round-robin %g", kk.MaxLoad(), rr.MaxLoad())
	}
}

func TestKarmarkarKarpClassic(t *testing.T) {
	// Classic 2-way LDM example {8,7,6,5,4}: the differencing method lands
	// at difference 2 → loads 16/14 (optimum is 15/15; LDM is a heuristic).
	a := KarmarkarKarp(items(8, 7, 6, 5, 4), 2)
	if a.MaxLoad() != 16 {
		t.Errorf("MaxLoad = %g, want 16 (LDM result)", a.MaxLoad())
	}
	checkComplete(t, items(8, 7, 6, 5, 4), a, 2)
}

func TestSingleBin(t *testing.T) {
	in := items(1, 2, 3)
	for name, alloc := range allocators {
		a := alloc(in, 1)
		if a.MaxLoad() != 6 {
			t.Errorf("%s: single bin MaxLoad = %g, want 6", name, a.MaxLoad())
		}
	}
}

func TestMoreBinsThanItems(t *testing.T) {
	in := items(5, 3)
	for name, alloc := range allocators {
		a := alloc(in, 10)
		checkComplete(t, in, a, 10)
		if a.MaxLoad() != 5 {
			t.Errorf("%s: MaxLoad = %g, want 5", name, a.MaxLoad())
		}
	}
}

func TestEmptyItems(t *testing.T) {
	for name, alloc := range allocators {
		a := alloc(nil, 4)
		if a.MaxLoad() != 0 || a.Imbalance() != 0 {
			t.Errorf("%s: empty allocation MaxLoad=%g Imbalance=%g", name, a.MaxLoad(), a.Imbalance())
		}
	}
}

func TestZeroWeights(t *testing.T) {
	in := items(0, 0, 0)
	for name, alloc := range allocators {
		a := alloc(in, 2)
		checkComplete(t, in, a, 2)
		if a.MaxLoad() != 0 {
			t.Errorf("%s: MaxLoad = %g", name, a.MaxLoad())
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := make([]Item, 40)
	for i := range in {
		in[i] = Item{ID: i, Weight: float64(rng.Intn(10))} // many ties
	}
	for name, alloc := range allocators {
		a := alloc(in, 5)
		b := alloc(in, 5)
		for id, bin := range a.ItemBin {
			if b.ItemBin[id] != bin {
				t.Errorf("%s: nondeterministic placement of item %d", name, id)
			}
		}
	}
}

func TestPanicsOnZeroBins(t *testing.T) {
	for name, alloc := range allocators {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for 0 bins", name)
				}
			}()
			alloc(items(1), 0)
		}()
	}
}

func TestLPTBeatsRoundRobinOnSkewedLoad(t *testing.T) {
	// The paper's core load-balancing claim, in miniature: cost-aware
	// placement (LPT over costs) beats cardinality-oblivious round-robin.
	in := items(100, 1, 100, 1, 1, 1) // heavies at even indices defeat RR
	lpt := LPT(in, 2)
	rr := RoundRobin(in, 2)
	if lpt.MaxLoad() >= rr.MaxLoad() {
		t.Errorf("LPT %g should beat round-robin %g", lpt.MaxLoad(), rr.MaxLoad())
	}
}
