package binpack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomItems derives a bounded random instance from a seed.
func randomItems(seed int64) ([]Item, int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(80)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, Weight: rng.Float64() * 1000}
	}
	return items, 1 + rng.Intn(10)
}

func totalWeight(items []Item) float64 {
	var t float64
	for _, it := range items {
		t += it.Weight
	}
	return t
}

func TestAllocatorsCompleteQuick(t *testing.T) {
	for name, alloc := range allocators {
		f := func(seed int64) bool {
			items, bins := randomItems(seed)
			a := alloc(items, bins)
			if len(a.ItemBin) != len(items) {
				return false
			}
			var binTotal float64
			for _, l := range a.Loads {
				binTotal += l
			}
			return math.Abs(binTotal-totalWeight(items)) < 1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMaxLoadBoundsQuick(t *testing.T) {
	// For every allocator: max(total/bins, max item) <= MaxLoad <= total.
	for name, alloc := range allocators {
		f := func(seed int64) bool {
			items, bins := randomItems(seed)
			a := alloc(items, bins)
			total := totalWeight(items)
			var maxItem float64
			for _, it := range items {
				if it.Weight > maxItem {
					maxItem = it.Weight
				}
			}
			lower := math.Max(total/float64(bins), maxItem)
			return a.MaxLoad() >= lower-1e-6 && a.MaxLoad() <= total+1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLPTNeverWorseThanRoundRobinQuick(t *testing.T) {
	f := func(seed int64) bool {
		items, bins := randomItems(seed)
		// Round-robin can get lucky on particular orders, but LPT is
		// guaranteed within 4/3 of optimal, so it can exceed RR by at most
		// a third of the lower bound.
		lpt := LPT(items, bins).MaxLoad()
		rr := RoundRobin(items, bins).MaxLoad()
		total := totalWeight(items)
		var maxItem float64
		for _, it := range items {
			if it.Weight > maxItem {
				maxItem = it.Weight
			}
		}
		lower := math.Max(total/float64(bins), maxItem)
		return lpt <= rr || lpt <= lower*4.0/3.0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestImbalanceAtLeastOneQuick(t *testing.T) {
	for name, alloc := range allocators {
		f := func(seed int64) bool {
			items, bins := randomItems(seed)
			imb := alloc(items, bins).Imbalance()
			return imb == 0 || imb >= 1-1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
