// Package binpack solves the partition-to-reducer allocation problem of
// DMT's Step 3 (Sec. V-A): divide N weighted items (partitions with
// estimated costs) into K bins (reducers) so the maximum bin weight — the
// end-to-end reduce time — is minimized. The problem is the NP-complete
// multi-bin packing of [Lemaire, Finke, Brauner 2006]; the package provides
// the polynomial-time approximations used in practice:
//
//   - LPT greedy (largest item to the lightest bin), the allocator DOD uses.
//   - Karmarkar–Karp largest differencing, a higher-quality alternative
//     exercised by the allocator ablation benchmark.
//   - Round-robin, the naive baseline.
package binpack

import (
	"container/heap"
	"fmt"
	"sort"
)

// Item is one weighted unit to allocate.
type Item struct {
	ID     int
	Weight float64
}

// Assignment maps item IDs to bin indices.
type Assignment struct {
	Bins    [][]Item  // items per bin
	Loads   []float64 // total weight per bin
	ItemBin map[int]int
}

// MaxLoad returns the heaviest bin's load (the makespan being minimized).
func (a *Assignment) MaxLoad() float64 {
	var max float64
	for _, l := range a.Loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Imbalance returns max/mean bin load; 1 is perfect balance. Empty
// assignments return 0.
func (a *Assignment) Imbalance() float64 {
	if len(a.Loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range a.Loads {
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(a.Loads))
	return a.MaxLoad() / mean
}

func newAssignment(bins int) *Assignment {
	return &Assignment{
		Bins:    make([][]Item, bins),
		Loads:   make([]float64, bins),
		ItemBin: make(map[int]int),
	}
}

func (a *Assignment) place(item Item, bin int) {
	a.Bins[bin] = append(a.Bins[bin], item)
	a.Loads[bin] += item.Weight
	a.ItemBin[item.ID] = bin
}

// binHeap is a min-heap over (load, bin index).
type binEntry struct {
	load float64
	bin  int
}
type binHeap []binEntry

func (h binHeap) Len() int { return len(h) }
func (h binHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].bin < h[j].bin
}
func (h binHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *binHeap) Push(x any)   { *h = append(*h, x.(binEntry)) }
func (h *binHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// LPT allocates items to bins by longest-processing-time-first greedy:
// sort items by descending weight, place each into the currently lightest
// bin. Deterministic: ties break by item ID and bin index.
func LPT(items []Item, bins int) *Assignment {
	if bins < 1 {
		panic(fmt.Sprintf("binpack: bins = %d < 1", bins))
	}
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		return sorted[i].ID < sorted[j].ID
	})
	a := newAssignment(bins)
	h := make(binHeap, bins)
	for i := range h {
		h[i] = binEntry{bin: i}
	}
	heap.Init(&h)
	for _, item := range sorted {
		e := heap.Pop(&h).(binEntry)
		a.place(item, e.bin)
		e.load += item.Weight
		heap.Push(&h, e)
	}
	return a
}

// RoundRobin allocates items to bins cyclically, ignoring weights — the
// naive cardinality-style baseline.
func RoundRobin(items []Item, bins int) *Assignment {
	if bins < 1 {
		panic(fmt.Sprintf("binpack: bins = %d < 1", bins))
	}
	a := newAssignment(bins)
	for i, item := range items {
		a.place(item, i%bins)
	}
	return a
}

// KarmarkarKarp allocates items by the largest differencing method
// generalized to k-way partitioning: repeatedly merge the two subsets with
// the largest load difference, scheduling the heavier half against the
// lighter. It typically yields tighter balance than LPT at O(n log n) cost.
func KarmarkarKarp(items []Item, bins int) *Assignment {
	if bins < 1 {
		panic(fmt.Sprintf("binpack: bins = %d < 1", bins))
	}
	a := newAssignment(bins)
	if len(items) == 0 {
		return a
	}

	// Each heap node is a k-tuple of part-loads (descending) plus the item
	// lists behind each part. Priority: largest (max-min) difference.
	type node struct {
		loads []float64
		parts [][]Item
	}
	diff := func(n *node) float64 { return n.loads[0] - n.loads[len(n.loads)-1] }

	nodes := make([]*node, 0, len(items))
	for _, it := range items {
		n := &node{loads: make([]float64, bins), parts: make([][]Item, bins)}
		n.loads[0] = it.Weight
		n.parts[0] = []Item{it}
		nodes = append(nodes, n)
	}

	// Deterministic max-heap by (difference, smallest contained item ID).
	minID := func(n *node) int {
		id := int(^uint(0) >> 1)
		for _, part := range n.parts {
			for _, it := range part {
				if it.ID < id {
					id = it.ID
				}
			}
		}
		return id
	}
	less := func(x, y *node) bool {
		dx, dy := diff(x), diff(y)
		if dx != dy {
			return dx > dy
		}
		return minID(x) < minID(y)
	}

	for len(nodes) > 1 {
		sort.SliceStable(nodes, func(i, j int) bool { return less(nodes[i], nodes[j]) })
		x, y := nodes[0], nodes[1]
		// Merge: x's largest part pairs with y's smallest, etc.
		merged := &node{loads: make([]float64, bins), parts: make([][]Item, bins)}
		for i := 0; i < bins; i++ {
			j := bins - 1 - i
			merged.loads[i] = x.loads[i] + y.loads[j]
			merged.parts[i] = append(append([]Item(nil), x.parts[i]...), y.parts[j]...)
		}
		// Re-sort the merged node's parts descending by load.
		idx := make([]int, bins)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return merged.loads[idx[a]] > merged.loads[idx[b]] })
		loads := make([]float64, bins)
		parts := make([][]Item, bins)
		for pos, i := range idx {
			loads[pos] = merged.loads[i]
			parts[pos] = merged.parts[i]
		}
		merged.loads, merged.parts = loads, parts
		nodes = append([]*node{merged}, nodes[2:]...)
	}

	final := nodes[0]
	for bin, part := range final.parts {
		for _, it := range part {
			a.place(it, bin)
		}
	}
	return a
}
