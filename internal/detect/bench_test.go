package detect

import (
	"fmt"
	"testing"

	"dod/internal/geom"
	"dod/internal/synth"
)

// Kernel benchmarks: raw detector throughput on fixed workloads, measured
// at the detect layer so allocation behavior of the hot path is visible
// (`-benchmem`). These are the numbers `cmd/dodbench -json` records into
// the BENCH_*.json trajectory.

// benchPoints2D is the shared 2D workload: a Massachusetts-density segment
// (intermediate regime for r=5, k=4 — exercises pruning, ring scans and the
// Nested-Loop fallback, not just one branch).
func benchPoints2D(n int) []geom.Point {
	return synth.Segment(synth.Massachusetts, n, 3)
}

var benchParams = Params{R: 5, K: 4}

func benchDetector(b *testing.B, kind Kind, pts []geom.Point) {
	b.Helper()
	b.ReportAllocs()
	d := New(kind, 7)
	var comps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := d.Detect(pts, nil, benchParams)
		comps = res.Stats.DistComps
	}
	b.ReportMetric(float64(comps), "distcomps")
	b.ReportMetric(float64(len(pts))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkNestedLoop2D(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchDetector(b, NestedLoop, benchPoints2D(n))
		})
	}
}

func BenchmarkCellBased2D(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchDetector(b, CellBased, benchPoints2D(n))
		})
	}
}

func BenchmarkCellBasedL2_2D(b *testing.B) {
	for _, n := range []int{8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchDetector(b, CellBasedL2, benchPoints2D(n))
		})
	}
}

func BenchmarkKDTree2D(b *testing.B) {
	benchDetector(b, KDTree, benchPoints2D(8000))
}

func BenchmarkPivot2D(b *testing.B) {
	benchDetector(b, Pivot, benchPoints2D(2000))
}

// BenchmarkCellBased3D exercises the d=3 unrolled kernel and the 3^3/7^3
// neighborhood blocks.
func BenchmarkCellBased3D(b *testing.B) {
	pts := synth.GaussianCloud(8000, 3, 17)
	benchDetector(b, CellBased, pts)
}
