package detect

import (
	"fmt"
	"testing"

	"dod/internal/geom"
	"dod/internal/synth"
)

// toSet lays out core points first, then support, matching the columnar
// contract of DetectSet.
func toPointSet(core, support []geom.Point) (*geom.PointSet, int) {
	all := geom.NewPointSet(core[0].Dim(), len(core)+len(support))
	for _, p := range core {
		all.Append(p)
	}
	for _, p := range support {
		all.Append(p)
	}
	return all, len(core)
}

// TestPGraphBitIdenticalToBruteForce is the exactness property of the
// proximity-graph tactic: across seeds × datasets (low- and high-dim,
// with and without support points) × sequential/parallel paths, the
// outlier set must equal BruteForce's byte for byte. Run under -race in CI
// to also catch sharing bugs in the tiled walk path.
func TestPGraphBitIdenticalToBruteForce(t *testing.T) {
	type dataset struct {
		name    string
		core    []geom.Point
		support []geom.Point
		params  Params
	}
	var datasets []dataset

	for _, seed := range []int64{1, 2, 3, 4, 17} {
		seg := synth.Segment(synth.Massachusetts, 1200, seed)
		datasets = append(datasets, dataset{
			name:    fmt.Sprintf("ma2d/seed=%d", seed),
			core:    seg[:900],
			support: seg[900:],
			params:  Params{R: 5, K: 4},
		})
		hd, _ := synth.HighDimPlanted(800, 32, 4, 0.02, seed)
		datasets = append(datasets, dataset{
			name:   fmt.Sprintf("planted32d/seed=%d", seed),
			core:   hd,
			params: Params{R: 4, K: 4},
		})
		cloud := synth.GaussianCloud(700, 8, seed)
		datasets = append(datasets, dataset{
			name:    fmt.Sprintf("cloud8d/seed=%d", seed),
			core:    cloud[:500],
			support: cloud[500:],
			params:  Params{R: 12, K: 6},
		})
	}

	for _, ds := range datasets {
		for _, detSeed := range []int64{1, 7, 42, 1000003} {
			all, nCore := toPointSet(ds.core, ds.support)
			want := DetectSet(New(BruteForce, 0), all, nCore, ds.params)
			got := DetectSet(New(PGraph, detSeed), all, nCore, ds.params)
			if !equalIDs(got.OutlierIDs, want.OutlierIDs) {
				t.Fatalf("%s seed=%d: sequential outliers diverge from BruteForce: got %d, want %d",
					ds.name, detSeed, len(got.OutlierIDs), len(want.OutlierIDs))
			}
			gotPar := DetectSetParallel(New(PGraph, detSeed), all, nCore, ds.params, 4)
			if !equalIDs(gotPar.OutlierIDs, got.OutlierIDs) {
				t.Fatalf("%s seed=%d: parallel outliers diverge from sequential", ds.name, detSeed)
			}
			if gotPar.Stats != got.Stats {
				t.Fatalf("%s seed=%d: parallel stats %+v != sequential %+v",
					ds.name, detSeed, gotPar.Stats, got.Stats)
			}
		}
	}
}

// TestPGraphDeterministicForSeed: same (input, seed) must give identical
// results including DistComps — the deterministic replay contract every
// tactic honors.
func TestPGraphDeterministicForSeed(t *testing.T) {
	pts, _ := synth.HighDimPlanted(600, 16, 4, 0.05, 9)
	all, nCore := toPointSet(pts, nil)
	params := Params{R: 4, K: 4}
	a := DetectSet(New(PGraph, 5), all, nCore, params)
	b := DetectSet(New(PGraph, 5), all, nCore, params)
	if !equalIDs(a.OutlierIDs, b.OutlierIDs) || a.Stats != b.Stats {
		t.Fatalf("same seed, different results: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestPGraphCheaperThanBruteForceOnClusteredHighDim: on a clustered
// high-dim workload most points certify after a short walk, so the graph
// tactic must beat the quadratic scan on distance computations even after
// paying for construction.
func TestPGraphCheaperThanBruteForceOnClusteredHighDim(t *testing.T) {
	pts, _ := synth.HighDimPlanted(4000, 32, 4, 0.01, 3)
	all, nCore := toPointSet(pts, nil)
	params := Params{R: 4, K: 4}
	brute := DetectSet(New(BruteForce, 0), all, nCore, params)
	graph := DetectSet(New(PGraph, 1), all, nCore, params)
	if graph.Stats.DistComps >= brute.Stats.DistComps {
		t.Fatalf("graph tactic no cheaper than brute force: %d >= %d",
			graph.Stats.DistComps, brute.Stats.DistComps)
	}
}
