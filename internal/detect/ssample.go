package detect

import (
	"dod/internal/geom"
	"dod/internal/par"
	"dod/internal/ssample"
)

// ssampleDetector estimates Def. 2.2 verdicts from a sensitivity-weighted
// sample of the pool (internal/ssample) instead of scanning it — linear
// time in |core| + |pool| with a provable per-point error bound, but
// APPROXIMATE: verdicts are not guaranteed identical to BruteForce. The
// kind reports Approximate() == true and is only planner-eligible when the
// caller sets AllowApprox. The seed fixes the pilot and the weighted
// draws, so output (and DistComps) is deterministic.
type ssampleDetector struct{ seed int64 }

func (ssampleDetector) Kind() Kind { return SSample }

func (d ssampleDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func ssParams(params Params) ssample.Params {
	return ssample.Params{R: params.R, K: params.K}
}

func (d ssampleDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	pl := ssample.BuildPlan(all, ssParams(params), d.seed)
	res.Stats.DistComps += pl.BuildComp
	scores, comps := pl.ScoreRange(nil, 0, nCore)
	res.Stats.DistComps += comps
	for _, s := range scores {
		if s.Outlier {
			res.OutlierIDs = append(res.OutlierIDs, s.ID)
		}
	}
	return res
}

func (d ssampleDetector) detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result {
	var res Result
	// The plan (pilot + weighted draws) is built once, sequentially; tiles
	// score disjoint core ranges against the same frozen sample, so the
	// merged output is identical to the sequential pass.
	pl := ssample.BuildPlan(all, ssParams(params), d.seed)
	res.Stats.DistComps += pl.BuildComp

	tiles := make([]Result, par.Tiles(nCore, workers))
	par.Do(nCore, workers, func(tile, lo, hi int) {
		t := &tiles[tile]
		scores, comps := pl.ScoreRange(nil, lo, hi)
		t.Stats.DistComps += comps
		for _, s := range scores {
			if s.Outlier {
				t.OutlierIDs = append(t.OutlierIDs, s.ID)
			}
		}
	})
	mergeTiles(&res, tiles)
	return res
}
