package detect

import (
	"math"
	"math/rand"

	"dod/internal/geom"
)

// pivotDetector is a DOLPHIN-style pivot-based detector (Angiulli &
// Fassetti, TKDD 2009 — the paper's reference [4]): a small set of pivot
// points is chosen, every candidate's distance to each pivot is
// precomputed, and the triangle inequality |d(p,v) − d(q,v)| ≤ d(p,q)
// prunes candidates that cannot be neighbors before any exact distance is
// evaluated. The paper excludes it from the distributed candidate set
// because the original relies on a global index; as a *per-partition*
// detector it needs no global state, so this implementation restores it as
// an extension candidate.
type pivotDetector struct {
	seed int64
}

func (pivotDetector) Kind() Kind { return Pivot }

// numPivots balances precompute cost (n·m distances) against filter power.
const numPivots = 8

func (d pivotDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func (d pivotDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	n := all.Len()

	m := numPivots
	if m > n {
		m = n
	}
	// Seeded pivot choice; distances to pivots double as the index, stored
	// point-major (pivDist[q*m : q*m+m] = point q's distances to every
	// pivot) so the triangle-inequality filter below reads one contiguous
	// stripe per candidate.
	rng := rand.New(rand.NewSource(d.seed))
	pivotIdx := rng.Perm(n)[:m]
	pivDist := make([]float64, n*m)
	for i, pi := range pivotIdx {
		for j := 0; j < n; j++ {
			res.Stats.DistComps++
			pivDist[j*m+i] = math.Sqrt(all.Dist2At(pi, j))
		}
		res.Stats.PointsIndexed += int64(n)
	}

	order := rng.Perm(n)
	r2 := params.R * params.R
	var pruned, comps int64
	for p := 0; p < nCore; p++ {
		// A core point's own pivot distances sit at its set index — the
		// set replaces the old ID-to-position map.
		id := all.IDs[p]
		pRow := pivDist[p*m : p*m+m]
		neighbors := 0
		offset := scanOffset(id, n)
		// Two linear passes realize the rotated permutation without a
		// modulo per candidate (same visit sequence as order[(j+offset)%n]).
		for _, seg := range [2][]int{order[offset:], order[:offset]} {
			for _, qi := range seg {
				if neighbors >= params.K {
					break
				}
				if all.IDs[qi] == id {
					continue
				}
				// Triangle-inequality filter: if any pivot separates p and
				// q by more than r, q cannot be a neighbor.
				qRow := pivDist[qi*m : qi*m+m]
				filtered := false
				for i := 0; i < m; i++ {
					if math.Abs(pRow[i]-qRow[i]) > params.R {
						filtered = true
						break
					}
				}
				if filtered {
					pruned++ // counts filtered candidates
					continue
				}
				comps++
				if all.Within2(p, qi, r2) {
					neighbors++
				}
			}
		}
		if neighbors < params.K {
			res.OutlierIDs = append(res.OutlierIDs, id)
		}
	}
	res.Stats.CellsPruned += pruned
	res.Stats.DistComps += comps
	return res
}
