package detect

import (
	"math"
	"math/rand"

	"dod/internal/geom"
)

// pivotDetector is a DOLPHIN-style pivot-based detector (Angiulli &
// Fassetti, TKDD 2009 — the paper's reference [4]): a small set of pivot
// points is chosen, every candidate's distance to each pivot is
// precomputed, and the triangle inequality |d(p,v) − d(q,v)| ≤ d(p,q)
// prunes candidates that cannot be neighbors before any exact distance is
// evaluated. The paper excludes it from the distributed candidate set
// because the original relies on a global index; as a *per-partition*
// detector it needs no global state, so this implementation restores it as
// an extension candidate.
type pivotDetector struct {
	seed int64
}

func (pivotDetector) Kind() Kind { return Pivot }

// numPivots balances precompute cost (n·m distances) against filter power.
const numPivots = 8

func (d pivotDetector) Detect(core, support []geom.Point, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	var res Result
	if len(core) == 0 {
		return res
	}
	all := concat(core, support)
	n := len(all)

	m := numPivots
	if m > n {
		m = n
	}
	// Seeded pivot choice; distances to pivots double as the index.
	rng := rand.New(rand.NewSource(d.seed))
	pivotIdx := rng.Perm(n)[:m]
	pivDist := make([][]float64, m)
	for i, pi := range pivotIdx {
		pivDist[i] = make([]float64, n)
		for j, q := range all {
			res.Stats.DistComps++
			pivDist[i][j] = geom.Dist(all[pi], q)
		}
		res.Stats.PointsIndexed += int64(n)
	}
	// Position of each point in `all` so a core point can find its own
	// pivot distances.
	posByID := make(map[uint64]int, n)
	for j, q := range all {
		posByID[q.ID] = j
	}

	order := rng.Perm(n)
	for _, p := range core {
		pPos := posByID[p.ID]
		neighbors := 0
		offset := scanOffset(p.ID, n)
		for j := 0; j < n && neighbors < params.K; j++ {
			qPos := order[(j+offset)%n]
			q := all[qPos]
			if q.ID == p.ID {
				continue
			}
			// Triangle-inequality filter: if any pivot separates p and q
			// by more than r, q cannot be a neighbor.
			pruned := false
			for i := 0; i < m; i++ {
				if math.Abs(pivDist[i][pPos]-pivDist[i][qPos]) > params.R {
					pruned = true
					break
				}
			}
			if pruned {
				res.Stats.CellsPruned++ // counts filtered candidates
				continue
			}
			res.Stats.DistComps++
			if geom.WithinDist(p, q, params.R) {
				neighbors++
			}
		}
		if neighbors < params.K {
			res.OutlierIDs = append(res.OutlierIDs, p.ID)
		}
	}
	return res
}
