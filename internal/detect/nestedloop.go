package detect

import (
	"math/rand"

	"dod/internal/geom"
)

// nestedLoopDetector implements the Nested-Loop algorithm of Knorr & Ng as
// described in Sec. IV-A: for each point p, evaluate distances to the other
// points *in random order* until either k neighbors are found (p is an
// inlier) or the candidate pool is exhausted (p is an outlier).
//
// The random scan order is what Lemma 4.1's cost model assumes: the
// expected number of trials to find k neighbors is k/μ where μ is the
// probability a random point is a neighbor — hence cost grows with the
// sparsity of the partition. One seeded permutation of the candidate pool
// is drawn per Detect call; each core point scans the pool from a rotation
// derived from its ID, so per-point orders are decorrelated without a
// reshuffle per point, and — because the rotation depends only on the
// point, the seed, and the pool size — the Cell-Based detector's
// Nested-Loop fallback reproduces the identical scan for the identical
// point.
type nestedLoopDetector struct {
	seed int64
}

func (nestedLoopDetector) Kind() Kind { return NestedLoop }

// scanOffset returns the deterministic rotation of the shared permutation
// for one point.
func scanOffset(id uint64, n int) int {
	if n == 0 {
		return 0
	}
	return int(id % uint64(n) * 7919 % uint64(n)) // 7919 prime decorrelates nearby IDs
}

// randomScan counts neighbors of p among all (excluding p itself), visiting
// candidates in the rotated permutation and stopping at limit.
func randomScan(p geom.Point, all []geom.Point, order []int, r float64, limit int, stats *Stats) int {
	n := len(all)
	offset := scanOffset(p.ID, n)
	neighbors := 0
	for j := 0; j < n && neighbors < limit; j++ {
		q := all[order[(j+offset)%n]]
		if q.ID == p.ID {
			continue
		}
		stats.DistComps++
		if geom.WithinDist(p, q, r) {
			neighbors++
		}
	}
	return neighbors
}

func (d nestedLoopDetector) Detect(core, support []geom.Point, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	all := concat(core, support)
	rng := rand.New(rand.NewSource(d.seed))
	order := rng.Perm(len(all))

	var res Result
	for _, p := range core {
		if randomScan(p, all, order, params.R, params.K, &res.Stats) < params.K {
			res.OutlierIDs = append(res.OutlierIDs, p.ID)
		}
	}
	return res
}
