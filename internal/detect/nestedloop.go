package detect

import (
	"math/rand"

	"dod/internal/geom"
)

// nestedLoopDetector implements the Nested-Loop algorithm of Knorr & Ng as
// described in Sec. IV-A: for each point p, evaluate distances to the other
// points *in random order* until either k neighbors are found (p is an
// inlier) or the candidate pool is exhausted (p is an outlier).
//
// The random scan order is what Lemma 4.1's cost model assumes: the
// expected number of trials to find k neighbors is k/μ where μ is the
// probability a random point is a neighbor — hence cost grows with the
// sparsity of the partition. One seeded permutation of the candidate pool
// is drawn per Detect call; each core point scans the pool from a rotation
// derived from its ID, so per-point orders are decorrelated without a
// reshuffle per point, and — because the rotation depends only on the
// point, the seed, and the pool size — the Cell-Based detector's
// Nested-Loop fallback reproduces the identical scan for the identical
// point.
type nestedLoopDetector struct {
	seed int64
}

func (nestedLoopDetector) Kind() Kind { return NestedLoop }

// scanOffset returns the deterministic rotation of the shared permutation
// for one point.
func scanOffset(id uint64, n int) int {
	if n == 0 {
		return 0
	}
	return int(id % uint64(n) * 7919 % uint64(n)) // 7919 prime decorrelates nearby IDs
}

// randomScan counts neighbors of point pi among the set (excluding pi
// itself), visiting candidates in the rotated permutation and stopping at
// limit. r2 is the squared distance threshold. The loop body touches only
// the set's two flat arrays and the shared permutation — no per-candidate
// allocation, pointer chasing, or modulo: the rotation is realized as two
// linear passes over the permutation (order[offset:], then order[:offset]),
// which visit the identical candidate sequence.
func randomScan(all *geom.PointSet, pi int, order []int, r2 float64, limit int, stats *Stats) int {
	n := all.Len()
	id := all.IDs[pi]
	offset := scanOffset(id, n)
	neighbors := 0
	if all.Dim == 2 {
		neighbors = scanSegment2(all, pi, id, order[offset:], r2, limit, neighbors, stats)
		if neighbors < limit {
			neighbors = scanSegment2(all, pi, id, order[:offset], r2, limit, neighbors, stats)
		}
		return neighbors
	}
	neighbors = scanSegment(all, pi, id, order[offset:], r2, limit, neighbors, stats)
	if neighbors < limit {
		neighbors = scanSegment(all, pi, id, order[:offset], r2, limit, neighbors, stats)
	}
	return neighbors
}

// scanSegment visits one contiguous run of the permutation.
func scanSegment(all *geom.PointSet, pi int, id uint64, seg []int, r2 float64, limit, neighbors int, stats *Stats) int {
	comps := int64(0)
	for _, qi := range seg {
		if neighbors >= limit {
			break
		}
		if all.IDs[qi] == id {
			continue
		}
		comps++
		if all.Within2(pi, qi, r2) {
			neighbors++
		}
	}
	stats.DistComps += comps
	return neighbors
}

// scanSegment2 is scanSegment's 2D specialization: the query coordinates
// live in registers and the distance test is fully inlined (same
// accumulation order as Within2, so verdicts are bit-identical).
func scanSegment2(all *geom.PointSet, pi int, id uint64, seg []int, r2 float64, limit, neighbors int, stats *Stats) int {
	ids, coords := all.IDs, all.Coords
	px, py := coords[2*pi], coords[2*pi+1]
	comps := int64(0)
	for _, qi := range seg {
		if neighbors >= limit {
			break
		}
		if ids[qi] == id {
			continue
		}
		comps++
		dx := px - coords[2*qi]
		dy := py - coords[2*qi+1]
		if dx*dx+dy*dy <= r2 {
			neighbors++
		}
	}
	stats.DistComps += comps
	return neighbors
}

func (d nestedLoopDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func (d nestedLoopDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	rng := rand.New(rand.NewSource(d.seed))
	order := rng.Perm(all.Len())
	r2 := params.R * params.R

	var res Result
	for i := 0; i < nCore; i++ {
		if randomScan(all, i, order, r2, params.K, &res.Stats) < params.K {
			res.OutlierIDs = append(res.OutlierIDs, all.IDs[i])
		}
	}
	return res
}
