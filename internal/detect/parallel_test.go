package detect

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dod/internal/geom"
	"dod/internal/synth"
)

// buildSet converts a randomScene into the columnar form DetectSet consumes.
func buildSet(core, support []geom.Point) (*geom.PointSet, int) {
	all := geom.NewPointSet(core[0].Dim(), len(core)+len(support))
	for _, p := range core {
		all.Append(p)
	}
	for _, p := range support {
		all.Append(p)
	}
	return all, len(core)
}

// TestDetectSetParallelBitIdentical is the tentpole contract: for every
// detector with a tiled kernel, DetectSetParallel at any worker count
// returns the exact sequential Result — same OutlierIDs in the same order,
// same DistComps/PointsIndexed/CellsPruned.
func TestDetectSetParallelBitIdentical(t *testing.T) {
	kinds := []Kind{BruteForce, NestedLoop, CellBased, CellBasedL2, KDTree, Pivot}
	f := func(seed int64) bool {
		core, support, params := randomScene(seed)
		all, nCore := buildSet(core, support)
		for _, kind := range kinds {
			d := New(kind, seed)
			want := DetectSet(d, all, nCore, params)
			for _, workers := range []int{1, 2, 3, 8} {
				got := DetectSetParallel(d, all, nCore, params, workers)
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Logf("seed %d %v workers=%d: stats %+v, want %+v",
						seed, kind, workers, got.Stats, want.Stats)
					return false
				}
				if !equalIDs(got.OutlierIDs, want.OutlierIDs) {
					t.Logf("seed %d %v workers=%d: %d outliers, want %d (order-sensitive)",
						seed, kind, workers, len(got.OutlierIDs), len(want.OutlierIDs))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDetectSetParallelLarge exercises inputs big enough to actually split
// into multiple tiles (randomScene tops out below minTile cells).
func TestDetectSetParallelLarge(t *testing.T) {
	pts := synth.Segment(synth.Massachusetts, 6000, 3)
	all, nCore := buildSet(pts, nil)
	params := Params{R: 5, K: 4}
	for _, kind := range []Kind{BruteForce, NestedLoop, CellBased, CellBasedL2} {
		d := New(kind, 7)
		want := DetectSet(d, all, nCore, params)
		for _, workers := range []int{2, 5, 16} {
			got := DetectSetParallel(d, all, nCore, params, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v workers=%d: parallel result diverges from sequential (outliers %d vs %d, stats %+v vs %+v)",
					kind, workers, len(got.OutlierIDs), len(want.OutlierIDs), got.Stats, want.Stats)
			}
		}
	}
}

// TestDetectSetParallelEdgeCases pins the degenerate paths.
func TestDetectSetParallelEdgeCases(t *testing.T) {
	d := New(CellBased, 1)
	if got := DetectSetParallel(d, geom.NewPointSet(2, 0), 0, Params{R: 1, K: 1}, 4); len(got.OutlierIDs) != 0 {
		t.Errorf("empty set: got %d outliers", len(got.OutlierIDs))
	}
	// A single isolated point is an outlier under any worker count.
	all := geom.NewPointSet(2, 1)
	all.AppendRaw(42, []float64{0, 0})
	for _, workers := range []int{0, 1, 4} {
		got := DetectSetParallel(d, all, 1, Params{R: 1, K: 1}, workers)
		if len(got.OutlierIDs) != 1 || got.OutlierIDs[0] != 42 {
			t.Errorf("workers=%d: got %v, want [42]", workers, got.OutlierIDs)
		}
	}
}

// TestDetectSetParallelRandomWorkers fuzzes worker counts against a fixed
// mid-size workload to catch tile-boundary mistakes.
func TestDetectSetParallelRandomWorkers(t *testing.T) {
	pts := synth.Segment(synth.Massachusetts, 1500, 11)
	all, nCore := buildSet(pts, nil)
	params := Params{R: 5, K: 4}
	d := New(CellBasedL2, 0)
	want := DetectSet(d, all, nCore, params)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		workers := 1 + rng.Intn(32)
		if got := DetectSetParallel(d, all, nCore, params, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverges", workers)
		}
	}
}

func benchDetectorParallel(b *testing.B, kind Kind, pts []geom.Point, workers int) {
	b.Helper()
	b.ReportAllocs()
	d := New(kind, 7)
	all, nCore := buildSet(pts, nil)
	var comps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := DetectSetParallel(d, all, nCore, benchParams, workers)
		comps = res.Stats.DistComps
	}
	b.ReportMetric(float64(comps), "distcomps")
	b.ReportMetric(float64(len(pts))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkParallelCellBased2D measures the tiled Cell-Based kernel across
// worker counts; workers=0 means GOMAXPROCS. The CI parcheck leg compares
// these against the sequential baselines under a GOMAXPROCS matrix.
func BenchmarkParallelCellBased2D(b *testing.B) {
	pts := benchPoints2D(8000)
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDetectorParallel(b, CellBased, pts, workers)
		})
	}
}

func BenchmarkParallelNestedLoop2D(b *testing.B) {
	pts := benchPoints2D(8000)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDetectorParallel(b, NestedLoop, pts, workers)
		})
	}
}
