package detect

import (
	"math"
	"math/rand"
	"sort"

	"dod/internal/geom"
)

// CellSide returns the Cell-Based grid cell width for dimensionality d and
// distance threshold r: r/(2√d), making the cell diagonal r/2 (the paper's
// cell area r²/8 in two dimensions).
func CellSide(d int, r float64) float64 {
	return r / (2 * math.Sqrt(float64(d)))
}

// L2Radius returns the Chebyshev cell radius beyond which no point can be a
// neighbor: ⌈2√d⌉ (3 in two dimensions, giving the 49-cell block of
// Lemma 4.2).
func L2Radius(d int) int {
	return int(math.Ceil(2 * math.Sqrt(float64(d))))
}

// cellIndex is the shared grid-construction step of both Cell-Based
// variants: every point hashed into cells of diagonal r/2, with per-cell
// counts. Building it is the linear "scanning and indexing" term of
// Lemma 4.2.
//
// The layout is CSR-style rather than map-based: one counting sort groups
// the point indices of the backing PointSet contiguously by cell ordinal,
// so a cell's membership is a subslice (ptIdx[start[ord]:start[ord+1]])
// and blockCount is a handful of dense array reads instead of map probes.
// Because points are scattered in input order, a cell's members are in
// ascending point-index order; with the core points forming the set's
// prefix, a cell's core members are exactly its leading run of indices
// < nCore — no separate core-by-cell structure is needed.
//
// When the grid has vastly more cells than points (high dimensionality or
// tiny r — e.g. a 4D grid easily exceeds 10⁸ cells for a few thousand
// points), dense per-ordinal arrays would dwarf the data; the index then
// falls back to a sorted sparse layout (distinct ordinals + binary search)
// with the same CSR membership slices.
type cellIndex struct {
	grid *geom.Grid
	l2   int

	// ptIdx holds point indices grouped by cell, ascending within a cell.
	ptIdx []int32

	// Dense layout (counts != nil): cell ord occupies
	// ptIdx[start[ord]:start[ord+1]] and holds counts[ord] points.
	start  []int32 // len NumCells+1, prefix sums of counts
	counts []int32 // len NumCells

	// Sparse layout (counts == nil): cells lists the non-empty ordinals in
	// ascending order; cells[i] occupies ptIdx[cellStart[i]:cellStart[i+1]].
	cells     []int
	cellStart []int32

	// nb is the sequential path's neighborhood odometer, so block scans
	// allocate nothing. Parallel workers bring their own (newNbScratch):
	// the odometer is the only mutable state a block scan touches, so one
	// scratch per worker makes the whole index safely shareable read-only.
	nb nbScratch
}

// nbScratch is one neighborhood-iteration odometer: the per-dimension
// decomposition of a cell ordinal and the iteration bounds/cursor of a
// Chebyshev block walk. forNeighborhood mutates nothing else, so each
// concurrent walker needs exactly one of these.
type nbScratch struct {
	idx, lo, hi, cur []int
}

func newNbScratch(d int) nbScratch {
	backing := make([]int, 4*d)
	return nbScratch{
		idx: backing[0:d],
		lo:  backing[d : 2*d],
		hi:  backing[2*d : 3*d],
		cur: backing[3*d : 4*d],
	}
}

// maxDenseCells bounds the dense layout's per-ordinal arrays: dense until
// the cell count exceeds 256 cells per point (with a 2²¹ floor so small
// inputs on fine grids stay dense) or an absolute 2²⁵-cell / 256 MiB cap.
func maxDenseCells(n int) int {
	limit := 1 << 21
	if 256*n > limit {
		limit = 256 * n
	}
	if limit > 1<<25 {
		limit = 1 << 25
	}
	return limit
}

func buildCellIndex(all *geom.PointSet, r float64, stats *Stats) *cellIndex {
	d := all.Dim
	ix := &cellIndex{
		grid: geom.NewGridByWidth(all.Bounds(), CellSide(d, r)),
		l2:   L2Radius(d),
	}
	ix.nb = newNbScratch(d)

	n := all.Len()
	nc := ix.grid.NumCells()
	ords := make([]int, n)
	for i := 0; i < n; i++ {
		ords[i] = ix.grid.CellOrdinalCoords(all.Coords[i*d : (i+1)*d])
		stats.PointsIndexed++
	}
	ix.ptIdx = make([]int32, n)

	// nc can wrap negative when a tiny r yields an astronomically fine
	// grid (the ordinal product overflows int); such grids are handled by
	// the sparse layout, which — like the map index it replaced — only
	// ever touches the wrapped ordinals points actually hash to.
	if nc > 0 && nc <= maxDenseCells(n) {
		// Dense: counting sort by ordinal.
		ix.counts = make([]int32, nc)
		for _, ord := range ords {
			ix.counts[ord]++
		}
		ix.start = make([]int32, nc+1)
		for ord, c := range ix.counts {
			ix.start[ord+1] = ix.start[ord] + c
		}
		next := make([]int32, nc)
		copy(next, ix.start[:nc])
		for i, ord := range ords {
			ix.ptIdx[next[ord]] = int32(i)
			next[ord]++
		}
		return ix
	}

	// Sparse: sort point indices by (ordinal, index) and extract runs.
	for i := range ix.ptIdx {
		ix.ptIdx[i] = int32(i)
	}
	sort.Slice(ix.ptIdx, func(a, b int) bool {
		pa, pb := ix.ptIdx[a], ix.ptIdx[b]
		if ords[pa] != ords[pb] {
			return ords[pa] < ords[pb]
		}
		return pa < pb
	})
	for i := 0; i < n; {
		ord := ords[ix.ptIdx[i]]
		j := i
		for j < n && ords[ix.ptIdx[j]] == ord {
			j++
		}
		ix.cells = append(ix.cells, ord)
		ix.cellStart = append(ix.cellStart, int32(i))
		i = j
	}
	ix.cellStart = append(ix.cellStart, int32(n))
	return ix
}

// count returns the number of points in the cell with the given ordinal.
func (ix *cellIndex) count(ord int) int {
	if ix.counts != nil {
		return int(ix.counts[ord])
	}
	c := sort.SearchInts(ix.cells, ord)
	if c == len(ix.cells) || ix.cells[c] != ord {
		return 0
	}
	return int(ix.cellStart[c+1] - ix.cellStart[c])
}

// members returns the point indices of the cell with the given ordinal,
// ascending (core points — set indices < nCore — first).
func (ix *cellIndex) members(ord int) []int32 {
	if ix.counts != nil {
		return ix.ptIdx[ix.start[ord]:ix.start[ord+1]]
	}
	c := sort.SearchInts(ix.cells, ord)
	if c == len(ix.cells) || ix.cells[c] != ord {
		return nil
	}
	return ix.ptIdx[ix.cellStart[c]:ix.cellStart[c+1]]
}

// forEachCoreCell visits every cell containing at least one core point, in
// ascending ordinal order, passing the cell's core members (the leading
// run of indices < nCore). This reproduces the iteration order of the old
// sorted-map grouping exactly.
func (ix *cellIndex) forEachCoreCell(nCore int, fn func(ord int, coreMembers []int32)) {
	emit := func(ord int, members []int32) {
		if len(members) == 0 || int(members[0]) >= nCore {
			return
		}
		hi := len(members)
		for hi > 0 && int(members[hi-1]) >= nCore {
			hi--
		}
		fn(ord, members[:hi])
	}
	if ix.counts != nil {
		for ord := range ix.counts {
			if ix.counts[ord] != 0 {
				emit(ord, ix.ptIdx[ix.start[ord]:ix.start[ord+1]])
			}
		}
		return
	}
	for c, ord := range ix.cells {
		emit(ord, ix.ptIdx[ix.cellStart[c]:ix.cellStart[c+1]])
	}
}

// forNeighborhood calls fn with the ordinal of every cell within Chebyshev
// distance radius of the cell with ordinal ord (including itself), clipped
// to the grid — the same row-major order as geom.Grid.Neighborhood, but
// iterative over the index's scratch odometer so block scans allocate
// nothing. Sequential path only; concurrent walkers use forNeighborhoodSc
// with a private odometer.
func (ix *cellIndex) forNeighborhood(ord, radius int, fn func(o int)) {
	ix.forNeighborhoodSc(&ix.nb, ord, radius, fn)
}

// forNeighborhoodSc is forNeighborhood over a caller-supplied odometer —
// the reentrant form the parallel tiles use (the index itself is only read).
func (ix *cellIndex) forNeighborhoodSc(sc *nbScratch, ord, radius int, fn func(o int)) {
	dims := ix.grid.Dims
	d := len(dims)
	for i := d - 1; i >= 0; i-- {
		sc.idx[i] = ord % dims[i]
		ord /= dims[i]
	}
	for i := 0; i < d; i++ {
		lo := sc.idx[i] - radius
		if lo < 0 {
			lo = 0
		}
		hi := sc.idx[i] + radius
		if hi > dims[i]-1 {
			hi = dims[i] - 1
		}
		sc.lo[i], sc.hi[i], sc.cur[i] = lo, hi, lo
	}
	for {
		o := 0
		for i := 0; i < d; i++ {
			o = o*dims[i] + sc.cur[i]
		}
		fn(o)
		i := d - 1
		for ; i >= 0; i-- {
			sc.cur[i]++
			if sc.cur[i] <= sc.hi[i] {
				break
			}
			sc.cur[i] = sc.lo[i]
		}
		if i < 0 {
			return
		}
	}
}

// blockCount sums the point counts of all cells within Chebyshev radius of
// the cell with ordinal ord.
func (ix *cellIndex) blockCount(ord, radius int) int {
	return ix.blockCountSc(&ix.nb, ord, radius)
}

// blockCountSc is blockCount over a caller-supplied odometer.
func (ix *cellIndex) blockCountSc(sc *nbScratch, ord, radius int) int {
	total := 0
	ix.forNeighborhoodSc(sc, ord, radius, func(o int) {
		total += ix.count(o)
	})
	return total
}

// cellBasedDetector implements the Cell-Based algorithm exactly as the
// paper characterizes it (Sec. IV-B, Lemma 4.2), generalized to d
// dimensions. Two pruning rules resolve whole cells without per-point work:
//
//   - L1 (inlier) rule: every pair of points within a cell's radius-1
//     Chebyshev block (3^d cells; 9 in 2D) is within distance r, so if the
//     block holds more than k points every core point in the cell is an
//     inlier.
//   - L2 (outlier) rule: any point outside the radius-⌈2√d⌉ block (7×7=49
//     cells in 2D) is farther than r away, so if the block holds at most k
//     points every core point in the cell is an outlier.
//
// Points in cells resolved by neither rule are "evaluated individually, in
// a fashion similar to Nested-Loop": a random-order scan of the whole
// candidate pool with early termination — the |D| + |D|·A(D)·k/(πr²) cost
// of Lemma 4.2's Equation (3). The CellBasedL2 variant below strengthens
// this fallback beyond the paper.
type cellBasedDetector struct {
	seed int64
}

func (cellBasedDetector) Kind() Kind { return CellBased }

func (d cellBasedDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func (d cellBasedDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	ix := buildCellIndex(all, params.R, &res.Stats)

	rng := rand.New(rand.NewSource(d.seed))
	order := rng.Perm(all.Len())
	r2 := params.R * params.R

	ix.forEachCoreCell(nCore, func(ord int, corePts []int32) {
		if ix.blockCount(ord, 1)-1 >= params.K {
			res.Stats.CellsPruned++ // inlier cell
			return
		}
		if ix.blockCount(ord, ix.l2)-1 < params.K {
			res.Stats.CellsPruned++ // outlier cell
			for _, pi := range corePts {
				res.OutlierIDs = append(res.OutlierIDs, all.IDs[pi])
			}
			return
		}
		// Undecided ("white") cell: Nested-Loop-style random scan over the
		// full pool, early-terminating at k neighbors — exactly the
		// |D|·A(D)·k/(πr²) fallback of Lemma 4.2's Equation (3).
		for _, pi := range corePts {
			if randomScan(all, int(pi), order, r2, params.K, &res.Stats) < params.K {
				res.OutlierIDs = append(res.OutlierIDs, all.IDs[pi])
			}
		}
	})
	return res
}

// cellBasedL2Detector is an optimized Cell-Based variant beyond the paper:
// undecided cells seed each point's neighbor count with the guaranteed L1
// block (all within r) and scan only the L1–L2 ring, never the full pool.
// It dominates the paper's Cell-Based at every density; the ablation
// benchmarks quantify by how much.
type cellBasedL2Detector struct{}

func (cellBasedL2Detector) Kind() Kind { return CellBasedL2 }

func (d cellBasedL2Detector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func (cellBasedL2Detector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	ix := buildCellIndex(all, params.R, &res.Stats)
	r2 := params.R * params.R

	// Per-cell scratch, reused across undecided cells: the L1 block's
	// ordinals and the ring membership (point indices).
	var l1Ords []int
	var ring []int32

	ix.forEachCoreCell(nCore, func(ord int, corePts []int32) {
		cnt1 := ix.blockCount(ord, 1)
		if cnt1-1 >= params.K {
			res.Stats.CellsPruned++
			return
		}
		if ix.blockCount(ord, ix.l2)-1 < params.K {
			res.Stats.CellsPruned++
			for _, pi := range corePts {
				res.OutlierIDs = append(res.OutlierIDs, all.IDs[pi])
			}
			return
		}
		// Points in the L1 block are guaranteed neighbors; only the ring
		// between L1 and L2 needs distance checks.
		l1Ords = l1Ords[:0]
		ix.forNeighborhood(ord, 1, func(o int) { l1Ords = append(l1Ords, o) })
		ring = ring[:0]
		ix.forNeighborhood(ord, ix.l2, func(o int) {
			for _, l1 := range l1Ords {
				if o == l1 {
					return
				}
			}
			ring = append(ring, ix.members(o)...)
		})
		for _, pi := range corePts {
			neighbors := cnt1 - 1 // every L1-block point is within r
			for _, qi := range ring {
				if neighbors >= params.K {
					break
				}
				res.Stats.DistComps++
				if all.Within2(int(pi), int(qi), r2) {
					neighbors++
				}
			}
			if neighbors < params.K {
				res.OutlierIDs = append(res.OutlierIDs, all.IDs[pi])
			}
		}
	})
	return res
}
