package detect

import (
	"math"
	"math/rand"
	"sort"

	"dod/internal/geom"
)

// CellSide returns the Cell-Based grid cell width for dimensionality d and
// distance threshold r: r/(2√d), making the cell diagonal r/2 (the paper's
// cell area r²/8 in two dimensions).
func CellSide(d int, r float64) float64 {
	return r / (2 * math.Sqrt(float64(d)))
}

// L2Radius returns the Chebyshev cell radius beyond which no point can be a
// neighbor: ⌈2√d⌉ (3 in two dimensions, giving the 49-cell block of
// Lemma 4.2).
func L2Radius(d int) int {
	return int(math.Ceil(2 * math.Sqrt(float64(d))))
}

// cellIndex is the shared grid-construction step of both Cell-Based
// variants: every point hashed into cells of diagonal r/2, with per-cell
// counts. Building it is the linear "scanning and indexing" term of
// Lemma 4.2.
type cellIndex struct {
	grid       *geom.Grid
	cellPoints map[int][]geom.Point
	count      map[int]int
	l2         int
}

func buildCellIndex(all []geom.Point, r float64, stats *Stats) *cellIndex {
	d := all[0].Dim()
	ix := &cellIndex{
		grid:       geom.NewGridByWidth(geom.Bounds(all), CellSide(d, r)),
		cellPoints: make(map[int][]geom.Point, len(all)/2+1),
		count:      make(map[int]int, len(all)/2+1),
		l2:         L2Radius(d),
	}
	for _, p := range all {
		ord := ix.grid.CellOrdinal(p)
		ix.cellPoints[ord] = append(ix.cellPoints[ord], p)
		ix.count[ord]++
		stats.PointsIndexed++
	}
	return ix
}

// blockCount sums the point counts of all cells within Chebyshev radius of
// the cell with ordinal ord.
func (ix *cellIndex) blockCount(ord, radius int) int {
	total := 0
	ix.grid.Neighborhood(ix.grid.Unflatten(ord), radius, func(o int) {
		total += ix.count[o]
	})
	return total
}

// coreByCell groups the core points by their cell ordinal.
func (ix *cellIndex) coreByCell(core []geom.Point) map[int][]geom.Point {
	out := make(map[int][]geom.Point, len(core)/2+1)
	for _, p := range core {
		ord := ix.grid.CellOrdinal(p)
		out[ord] = append(out[ord], p)
	}
	return out
}

// cellBasedDetector implements the Cell-Based algorithm exactly as the
// paper characterizes it (Sec. IV-B, Lemma 4.2), generalized to d
// dimensions. Two pruning rules resolve whole cells without per-point work:
//
//   - L1 (inlier) rule: every pair of points within a cell's radius-1
//     Chebyshev block (3^d cells; 9 in 2D) is within distance r, so if the
//     block holds more than k points every core point in the cell is an
//     inlier.
//   - L2 (outlier) rule: any point outside the radius-⌈2√d⌉ block (7×7=49
//     cells in 2D) is farther than r away, so if the block holds at most k
//     points every core point in the cell is an outlier.
//
// Points in cells resolved by neither rule are "evaluated individually, in
// a fashion similar to Nested-Loop": a random-order scan of the whole
// candidate pool with early termination — the |D| + |D|·A(D)·k/(πr²) cost
// of Lemma 4.2's Equation (3). The CellBasedL2 variant below strengthens
// this fallback beyond the paper.
type cellBasedDetector struct {
	seed int64
}

func (cellBasedDetector) Kind() Kind { return CellBased }

func (d cellBasedDetector) Detect(core, support []geom.Point, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	var res Result
	if len(core) == 0 {
		return res
	}
	all := concat(core, support)
	ix := buildCellIndex(all, params.R, &res.Stats)

	rng := rand.New(rand.NewSource(d.seed))
	order := rng.Perm(len(all))

	coreCells := ix.coreByCell(core)
	for _, ord := range sortedOrdinals(coreCells) {
		corePts := coreCells[ord]
		if ix.blockCount(ord, 1)-1 >= params.K {
			res.Stats.CellsPruned++ // inlier cell
			continue
		}
		if ix.blockCount(ord, ix.l2)-1 < params.K {
			res.Stats.CellsPruned++ // outlier cell
			for _, p := range corePts {
				res.OutlierIDs = append(res.OutlierIDs, p.ID)
			}
			continue
		}
		// Undecided ("white") cell: Nested-Loop-style random scan over the
		// full pool, early-terminating at k neighbors — exactly the
		// |D|·A(D)·k/(πr²) fallback of Lemma 4.2's Equation (3).
		for _, p := range corePts {
			if randomScan(p, all, order, params.R, params.K, &res.Stats) < params.K {
				res.OutlierIDs = append(res.OutlierIDs, p.ID)
			}
		}
	}
	return res
}

// sortedOrdinals returns the map's keys in ascending order so detection is
// deterministic regardless of map iteration order.
func sortedOrdinals(m map[int][]geom.Point) []int {
	out := make([]int, 0, len(m))
	for ord := range m {
		out = append(out, ord)
	}
	sort.Ints(out)
	return out
}

// cellBasedL2Detector is an optimized Cell-Based variant beyond the paper:
// undecided cells seed each point's neighbor count with the guaranteed L1
// block (all within r) and scan only the L1–L2 ring, never the full pool.
// It dominates the paper's Cell-Based at every density; the ablation
// benchmarks quantify by how much.
type cellBasedL2Detector struct{}

func (cellBasedL2Detector) Kind() Kind { return CellBasedL2 }

func (cellBasedL2Detector) Detect(core, support []geom.Point, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	var res Result
	if len(core) == 0 {
		return res
	}
	all := concat(core, support)
	ix := buildCellIndex(all, params.R, &res.Stats)

	coreCells := ix.coreByCell(core)
	for _, ord := range sortedOrdinals(coreCells) {
		corePts := coreCells[ord]
		cnt1 := ix.blockCount(ord, 1)
		if cnt1-1 >= params.K {
			res.Stats.CellsPruned++
			continue
		}
		if ix.blockCount(ord, ix.l2)-1 < params.K {
			res.Stats.CellsPruned++
			for _, p := range corePts {
				res.OutlierIDs = append(res.OutlierIDs, p.ID)
			}
			continue
		}
		// Points in the L1 block are guaranteed neighbors; only the ring
		// between L1 and L2 needs distance checks.
		idx := ix.grid.Unflatten(ord)
		l1Set := make(map[int]bool, 9)
		ix.grid.Neighborhood(idx, 1, func(o int) { l1Set[o] = true })
		var ring []geom.Point
		ix.grid.Neighborhood(idx, ix.l2, func(o int) {
			if !l1Set[o] {
				ring = append(ring, ix.cellPoints[o]...)
			}
		})
		for _, p := range corePts {
			neighbors := cnt1 - 1 // every L1-block point is within r
			for _, q := range ring {
				if neighbors >= params.K {
					break
				}
				res.Stats.DistComps++
				if geom.WithinDist(p, q, params.R) {
					neighbors++
				}
			}
			if neighbors < params.K {
				res.OutlierIDs = append(res.OutlierIDs, p.ID)
			}
		}
	}
	return res
}
