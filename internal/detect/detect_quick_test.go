package detect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dod/internal/geom"
)

// randomScene builds a bounded random detection instance.
func randomScene(seed int64) (core, support []geom.Point, params Params) {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(120)
	m := rng.Intn(40)
	gen := func(startID uint64, count int) []geom.Point {
		pts := make([]geom.Point, count)
		for i := range pts {
			pts[i] = geom.Point{
				ID:     startID + uint64(i),
				Coords: []float64{rng.Float64() * 50, rng.Float64() * 50},
			}
		}
		return pts
	}
	return gen(0, n), gen(100000, m), Params{R: 0.5 + rng.Float64()*8, K: 1 + rng.Intn(8)}
}

// TestDetectorEquivalenceQuick: all detectors agree with brute force on
// random instances and parameters.
func TestDetectorEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		core, support, params := randomScene(seed)
		want := sortedIDs(New(BruteForce, 0).Detect(core, support, params).OutlierIDs)
		for _, kind := range allKinds[1:] {
			got := sortedIDs(New(kind, seed).Detect(core, support, params).OutlierIDs)
			if !equalIDs(got, want) {
				t.Logf("seed %d: %v disagrees (%d vs %d outliers, r=%g k=%d)",
					seed, kind, len(got), len(want), params.R, params.K)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMonotonicityQuick: adding a support point can only remove outliers,
// never create them (more potential neighbors ⇒ fewer outliers).
func TestMonotonicityQuick(t *testing.T) {
	f := func(seed int64, extraX, extraY float64) bool {
		core, support, params := randomScene(seed)
		extra := geom.Point{ID: 999999, Coords: []float64{
			clampTo(extraX, 50), clampTo(extraY, 50),
		}}
		for _, kind := range allKinds {
			before := toSet(New(kind, seed).Detect(core, support, params).OutlierIDs)
			after := toSet(New(kind, seed).Detect(core, append(append([]geom.Point(nil), support...), extra), params).OutlierIDs)
			for id := range after {
				if !before[id] {
					t.Logf("seed %d: %v created outlier %d by adding a support point", seed, kind, id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestKMonotonicityQuick: raising k can only add outliers (a stricter
// neighbor requirement never rescues a point).
func TestKMonotonicityQuick(t *testing.T) {
	f := func(seed int64) bool {
		core, support, params := randomScene(seed)
		lower := toSet(New(BruteForce, 0).Detect(core, support, params).OutlierIDs)
		params2 := params
		params2.K = params.K + 1
		higher := toSet(New(BruteForce, 0).Detect(core, support, params2).OutlierIDs)
		for id := range lower {
			if !higher[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRMonotonicityQuick: growing r can only remove outliers.
func TestRMonotonicityQuick(t *testing.T) {
	f := func(seed int64) bool {
		core, support, params := randomScene(seed)
		smaller := toSet(New(BruteForce, 0).Detect(core, support, params).OutlierIDs)
		params2 := params
		params2.R = params.R * 1.5
		larger := toSet(New(BruteForce, 0).Detect(core, support, params2).OutlierIDs)
		for id := range larger {
			if !smaller[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func toSet(ids []uint64) map[uint64]bool {
	s := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func clampTo(v, max float64) float64 {
	if v != v || v < 0 { // NaN or negative
		return 0
	}
	if v > max {
		return max
	}
	return v
}
