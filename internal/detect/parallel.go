package detect

import (
	"math/rand"

	"dod/internal/geom"
	"dod/internal/par"
)

// This file holds the intra-partition parallel scan kernels: the same
// detectors as detect.go/cellbased.go/nestedloop.go, tiled across a bounded
// goroutine pool. Every parallel path is bit-identical to its sequential
// counterpart — same OutlierIDs in the same order, same Stats (DistComps is
// the deterministic cost measure the cluster simulator replays, so it must
// not drift). Identity holds because:
//
//   - tiles are contiguous ranges of the sequential iteration order
//     (ascending core index, or ascending cell ordinal), so concatenating
//     per-tile outputs in tile order reproduces the sequential output;
//   - each point's scan is self-contained (shared permutation + per-ID
//     rotation, or a block walk over the read-only cell index), so moving a
//     point to another goroutine changes nothing about its verdict or its
//     distance-computation count;
//   - all mutable state (odometers, ring scratch, partial Results) is
//     per-tile; the point set, permutation and cell index are only read.

// parSetDetector is the optional tiled fast path a detector can provide.
// detectSetPar must return a Result identical to detectSet for every input.
type parSetDetector interface {
	detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result
}

// DetectSetParallel is DetectSet with intra-partition parallelism: detectors
// that support tiling (BruteForce, Nested-Loop, both Cell-Based variants)
// spread the core scan over up to workers goroutines; workers < 1 means
// GOMAXPROCS. Results are bit-identical to DetectSet — callers may switch
// between the two freely, including under a deterministic-replay contract.
// Detectors without a tiled kernel (KD-Tree, Pivot) fall back to DetectSet.
func DetectSetParallel(d Detector, all *geom.PointSet, nCore int, params Params, workers int) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if nCore == 0 {
		return Result{}
	}
	workers = par.Workers(workers)
	if workers > 1 {
		if pd, ok := d.(parSetDetector); ok {
			return pd.detectSetPar(all, nCore, params, workers)
		}
	}
	return DetectSet(d, all, nCore, params)
}

// mergeTiles concatenates per-tile results in tile order into res. Tiles
// cover contiguous ranges of the sequential order, so this reproduces the
// sequential OutlierIDs exactly.
func mergeTiles(res *Result, tiles []Result) {
	total := 0
	for i := range tiles {
		total += len(tiles[i].OutlierIDs)
	}
	if total > 0 {
		res.OutlierIDs = make([]uint64, 0, total)
	}
	for i := range tiles {
		res.OutlierIDs = append(res.OutlierIDs, tiles[i].OutlierIDs...)
		res.Stats.Add(tiles[i].Stats)
	}
}

func (d bruteForceDetector) detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result {
	n := all.Len()
	r2 := params.R * params.R
	tiles := make([]Result, par.Tiles(nCore, workers))
	par.Do(nCore, workers, func(tile, lo, hi int) {
		t := &tiles[tile]
		for i := lo; i < hi; i++ {
			id := all.IDs[i]
			neighbors, compared := all.CountWithin2Coords(all.CoordsAt(i), id, 0, n, r2)
			t.Stats.DistComps += int64(compared)
			if neighbors < params.K {
				t.OutlierIDs = append(t.OutlierIDs, id)
			}
		}
	})
	var res Result
	mergeTiles(&res, tiles)
	return res
}

func (d nestedLoopDetector) detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result {
	rng := rand.New(rand.NewSource(d.seed))
	order := rng.Perm(all.Len())
	r2 := params.R * params.R

	tiles := make([]Result, par.Tiles(nCore, workers))
	par.Do(nCore, workers, func(tile, lo, hi int) {
		t := &tiles[tile]
		for i := lo; i < hi; i++ {
			if randomScan(all, i, order, r2, params.K, &t.Stats) < params.K {
				t.OutlierIDs = append(t.OutlierIDs, all.IDs[i])
			}
		}
	})
	var res Result
	mergeTiles(&res, tiles)
	return res
}

// coreCell is one materialized forEachCoreCell visit, captured so the cell
// list can be tiled. members aliases the index's CSR storage (read-only).
type coreCell struct {
	ord     int
	members []int32
}

// coreCells materializes forEachCoreCell's visit sequence in its ascending
// ordinal order.
func (ix *cellIndex) coreCells(nCore int) []coreCell {
	var cells []coreCell
	ix.forEachCoreCell(nCore, func(ord int, members []int32) {
		cells = append(cells, coreCell{ord: ord, members: members})
	})
	return cells
}

func (d cellBasedDetector) detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result {
	var res Result
	ix := buildCellIndex(all, params.R, &res.Stats)

	rng := rand.New(rand.NewSource(d.seed))
	order := rng.Perm(all.Len())
	r2 := params.R * params.R

	cells := ix.coreCells(nCore)
	tiles := make([]Result, par.Tiles(len(cells), workers))
	par.Do(len(cells), workers, func(tile, lo, hi int) {
		t := &tiles[tile]
		sc := newNbScratch(all.Dim)
		for _, c := range cells[lo:hi] {
			if ix.blockCountSc(&sc, c.ord, 1)-1 >= params.K {
				t.Stats.CellsPruned++
				continue
			}
			if ix.blockCountSc(&sc, c.ord, ix.l2)-1 < params.K {
				t.Stats.CellsPruned++
				for _, pi := range c.members {
					t.OutlierIDs = append(t.OutlierIDs, all.IDs[pi])
				}
				continue
			}
			for _, pi := range c.members {
				if randomScan(all, int(pi), order, r2, params.K, &t.Stats) < params.K {
					t.OutlierIDs = append(t.OutlierIDs, all.IDs[pi])
				}
			}
		}
	})
	mergeTiles(&res, tiles)
	return res
}

func (cellBasedL2Detector) detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result {
	var res Result
	ix := buildCellIndex(all, params.R, &res.Stats)
	r2 := params.R * params.R

	cells := ix.coreCells(nCore)
	tiles := make([]Result, par.Tiles(len(cells), workers))
	par.Do(len(cells), workers, func(tile, lo, hi int) {
		t := &tiles[tile]
		sc := newNbScratch(all.Dim)
		var l1Ords []int
		var ring []int32
		for _, c := range cells[lo:hi] {
			cnt1 := ix.blockCountSc(&sc, c.ord, 1)
			if cnt1-1 >= params.K {
				t.Stats.CellsPruned++
				continue
			}
			if ix.blockCountSc(&sc, c.ord, ix.l2)-1 < params.K {
				t.Stats.CellsPruned++
				for _, pi := range c.members {
					t.OutlierIDs = append(t.OutlierIDs, all.IDs[pi])
				}
				continue
			}
			l1Ords = l1Ords[:0]
			ix.forNeighborhoodSc(&sc, c.ord, 1, func(o int) { l1Ords = append(l1Ords, o) })
			ring = ring[:0]
			ix.forNeighborhoodSc(&sc, c.ord, ix.l2, func(o int) {
				for _, l1 := range l1Ords {
					if o == l1 {
						return
					}
				}
				ring = append(ring, ix.members(o)...)
			})
			for _, pi := range c.members {
				neighbors := cnt1 - 1
				for _, qi := range ring {
					if neighbors >= params.K {
						break
					}
					t.Stats.DistComps++
					if all.Within2(int(pi), int(qi), r2) {
						neighbors++
					}
				}
				if neighbors < params.K {
					t.OutlierIDs = append(t.OutlierIDs, all.IDs[pi])
				}
			}
		}
	})
	mergeTiles(&res, tiles)
	return res
}
