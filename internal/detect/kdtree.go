package detect

import (
	"sort"

	"dod/internal/geom"
)

// kdTreeDetector is an index-based detector beyond the paper's candidate
// set: it builds a kd-tree over core ∪ support and answers each core
// point's neighbor-count query with a pruned range count that terminates as
// soon as k neighbors are confirmed. It trades the Cell-Based detector's
// O(1) cell pruning for logarithmic spatial pruning that does not degrade
// with extreme sparsity, and serves as the "future work: richer algorithm
// candidate sets" extension discussed in Sec. I.
//
// The tree is columnar: nodes live in one flat arena indexed by int32, each
// referencing its point by PointSet index, so building and traversing touch
// no per-node heap objects and the split dimension is derived from depth
// rather than stored.
type kdTreeDetector struct{}

func (kdTreeDetector) Kind() Kind { return KDTree }

// kdNode is one arena slot: the point at this node plus child arena
// indices (-1 for none).
type kdNode struct {
	pt          int32
	left, right int32
}

// kdTree is the arena plus the point set it indexes.
type kdTree struct {
	set    *geom.PointSet
	nodes  []kdNode
	root   int32
	sorter kdSorter
}

// kdSorter orders point indices by one coordinate. It is a reusable
// sort.Interface so the per-node sorts in build allocate nothing (a
// sort.Slice closure would cost two allocations per tree node).
type kdSorter struct {
	coords []float64
	d, dim int
	idxs   []int32
}

func (s *kdSorter) Len() int { return len(s.idxs) }
func (s *kdSorter) Less(i, j int) bool {
	return s.coords[int(s.idxs[i])*s.d+s.dim] < s.coords[int(s.idxs[j])*s.d+s.dim]
}
func (s *kdSorter) Swap(i, j int) { s.idxs[i], s.idxs[j] = s.idxs[j], s.idxs[i] }

// build recursively median-splits idxs (point indices into t.set),
// appending nodes to the arena and returning the subtree's arena index.
// idxs is reordered in place.
func (t *kdTree) build(idxs []int32, depth int, stats *Stats) int32 {
	if len(idxs) == 0 {
		return -1
	}
	d := t.set.Dim
	dim := depth % d
	t.sorter = kdSorter{coords: t.set.Coords, d: d, dim: dim, idxs: idxs}
	sort.Sort(&t.sorter)
	mid := len(idxs) / 2
	stats.PointsIndexed++
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{pt: idxs[mid]})
	// Children are built after the append so arena growth cannot
	// invalidate the node reference we patch below.
	left := t.build(idxs[:mid], depth+1, stats)
	right := t.build(idxs[mid+1:], depth+1, stats)
	t.nodes[node].left = left
	t.nodes[node].right = right
	return node
}

// countWithin counts points within r of point pi (r2 = r*r), excluding pi
// itself, stopping once the count reaches limit.
func (t *kdTree) countWithin(node int32, depth, pi int, r2 float64, limit int, count *int, stats *Stats) {
	if node < 0 || *count >= limit {
		return
	}
	n := t.nodes[node]
	set := t.set
	if set.IDs[n.pt] != set.IDs[pi] {
		stats.DistComps++
		if set.Within2(pi, int(n.pt), r2) {
			*count++
			if *count >= limit {
				return
			}
		}
	}
	d := set.Dim
	dim := depth % d
	diff := set.Coords[pi*d+dim] - set.Coords[int(n.pt)*d+dim]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.countWithin(near, depth+1, pi, r2, limit, count, stats)
	if diff*diff <= r2 {
		t.countWithin(far, depth+1, pi, r2, limit, count, stats)
	}
}

func (d kdTreeDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func (kdTreeDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	n := all.Len()
	t := &kdTree{set: all, nodes: make([]kdNode, 0, n)}
	idxs := make([]int32, n)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	t.root = t.build(idxs, 0, &res.Stats)
	r2 := params.R * params.R
	for i := 0; i < nCore; i++ {
		count := 0
		t.countWithin(t.root, 0, i, r2, params.K, &count, &res.Stats)
		if count < params.K {
			res.OutlierIDs = append(res.OutlierIDs, all.IDs[i])
		}
	}
	return res
}
