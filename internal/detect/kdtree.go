package detect

import (
	"sort"

	"dod/internal/geom"
)

// kdTreeDetector is an index-based detector beyond the paper's candidate
// set: it builds a kd-tree over core ∪ support and answers each core
// point's neighbor-count query with a pruned range count that terminates as
// soon as k neighbors are confirmed. It trades the Cell-Based detector's
// O(1) cell pruning for logarithmic spatial pruning that does not degrade
// with extreme sparsity, and serves as the "future work: richer algorithm
// candidate sets" extension discussed in Sec. I.
type kdTreeDetector struct{}

func (kdTreeDetector) Kind() Kind { return KDTree }

type kdNode struct {
	point       geom.Point
	splitDim    int
	left, right *kdNode
}

// buildKD builds a balanced kd-tree by median splitting. pts is reordered.
func buildKD(pts []geom.Point, depth int, stats *Stats) *kdNode {
	if len(pts) == 0 {
		return nil
	}
	d := pts[0].Dim()
	dim := depth % d
	sort.Slice(pts, func(i, j int) bool { return pts[i].Coords[dim] < pts[j].Coords[dim] })
	mid := len(pts) / 2
	stats.PointsIndexed++
	return &kdNode{
		point:    pts[mid],
		splitDim: dim,
		left:     buildKD(pts[:mid], depth+1, stats),
		right:    buildKD(pts[mid+1:], depth+1, stats),
	}
}

// countWithin counts points within r of p, excluding p itself, stopping
// once the count reaches limit.
func (n *kdNode) countWithin(p geom.Point, r float64, limit int, count *int, stats *Stats) {
	if n == nil || *count >= limit {
		return
	}
	if n.point.ID != p.ID {
		stats.DistComps++
		if geom.WithinDist(p, n.point, r) {
			*count++
			if *count >= limit {
				return
			}
		}
	}
	diff := p.Coords[n.splitDim] - n.point.Coords[n.splitDim]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	near.countWithin(p, r, limit, count, stats)
	if diff*diff <= r*r {
		far.countWithin(p, r, limit, count, stats)
	}
}

func (kdTreeDetector) Detect(core, support []geom.Point, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	var res Result
	if len(core) == 0 {
		return res
	}
	all := concat(core, support)
	root := buildKD(all, 0, &res.Stats)
	for _, p := range core {
		count := 0
		root.countWithin(p, params.R, params.K, &count, &res.Stats)
		if count < params.K {
			res.OutlierIDs = append(res.OutlierIDs, p.ID)
		}
	}
	return res
}
