package detect

import (
	"dod/internal/geom"
	"dod/internal/par"
	"dod/internal/pgraph"
)

// pgraphDetector answers Def. 2.2 through a navigable proximity graph
// (internal/pgraph): the graph is built once per partition over core ∪
// support, then each core point is classified by a best-first walk that
// stops as soon as k verified neighbors certify it an inlier. Points the
// walk cannot certify fall back to a verified linear scan (early-exiting
// at k like Nested-Loop), so verdicts are exact — bit-identical to
// BruteForce on every input. The seed fixes the
// insertion order, making the graph (and therefore every DistComps count)
// deterministic.
type pgraphDetector struct{ seed int64 }

func (pgraphDetector) Kind() Kind { return PGraph }

func (d pgraphDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

// classifyRange classifies core points [lo, hi) against the built graph,
// appending outliers to t. Each point's walk starts from a reset Scratch,
// so its verdict and distance-computation count are independent of which
// goroutine (or tile) runs it.
func classifyRange(g *pgraph.Graph, all *geom.PointSet, lo, hi int, params Params, sc *pgraph.Scratch, t *Result) {
	n := all.Len()
	r2 := params.R * params.R
	for i := lo; i < hi; i++ {
		_, certified, comps := g.CountWithin(i, r2, params.K, sc)
		t.Stats.DistComps += comps
		if certified {
			continue // >= K verified neighbors: inlier, exactly
		}
		// Uncertified: the walk's count is only a lower bound. Settle the
		// verdict with a verified scan that stops as soon as K neighbors
		// confirm an inlier; only true outliers pay the full pass.
		skip := all.IDs[i]
		neighbors := 0
		for j := 0; j < n && neighbors < params.K; j++ {
			if all.IDs[j] == skip {
				continue
			}
			t.Stats.DistComps++
			if all.Dist2At(i, j) <= r2 {
				neighbors++
			}
		}
		if neighbors < params.K {
			t.OutlierIDs = append(t.OutlierIDs, all.IDs[i])
		}
	}
}

func (d pgraphDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	g, buildComps := pgraph.Build(all, d.seed)
	res.Stats.DistComps += buildComps
	res.Stats.PointsIndexed += int64(all.Len())
	sc := pgraph.NewScratch(all.Len())
	classifyRange(g, all, 0, nCore, params, sc, &res)
	return res
}

func (d pgraphDetector) detectSetPar(all *geom.PointSet, nCore int, params Params, workers int) Result {
	var res Result
	// Construction is sequential and seeded; only the per-point walks tile.
	g, buildComps := pgraph.Build(all, d.seed)
	res.Stats.DistComps += buildComps
	res.Stats.PointsIndexed += int64(all.Len())

	tiles := make([]Result, par.Tiles(nCore, workers))
	par.Do(nCore, workers, func(tile, lo, hi int) {
		sc := pgraph.NewScratch(all.Len())
		classifyRange(g, all, lo, hi, params, sc, &tiles[tile])
	})
	mergeTiles(&res, tiles)
	return res
}
