package detect

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dod/internal/geom"
	"dod/internal/synth"
)

// mapCellIndex re-implements the pre-CSR reference layout the CSR cellIndex
// replaced: points bucketed into a map keyed by cell ordinal, core cells
// visited through a sorted key list. The property tests below pin the CSR
// index to this reference on random grids.
type mapCellIndex struct {
	grid  *geom.Grid
	cells map[int][]int32
}

func buildMapCellIndex(all *geom.PointSet, r float64) *mapCellIndex {
	ix := &mapCellIndex{
		grid:  geom.NewGridByWidth(all.Bounds(), CellSide(all.Dim, r)),
		cells: make(map[int][]int32),
	}
	d := all.Dim
	for i := 0; i < all.Len(); i++ {
		ord := ix.grid.CellOrdinalCoords(all.Coords[i*d : (i+1)*d])
		ix.cells[ord] = append(ix.cells[ord], int32(i))
	}
	return ix
}

func (ix *mapCellIndex) blockCount(ord, radius int) int {
	total := 0
	ix.grid.Neighborhood(ix.grid.Unflatten(ord), radius, func(o int) {
		total += len(ix.cells[o])
	})
	return total
}

// coreCells returns (ordinal, leading core run) pairs in ascending ordinal
// order — the old sortedOrdinals walk.
func (ix *mapCellIndex) coreCells(nCore int) (ords []int, members [][]int32) {
	for ord := range ix.cells {
		ords = append(ords, ord)
	}
	sort.Ints(ords)
	kept := ords[:0]
	for _, ord := range ords {
		ms := ix.cells[ord]
		hi := len(ms)
		for hi > 0 && int(ms[hi-1]) >= nCore {
			hi--
		}
		if hi == 0 {
			continue
		}
		kept = append(kept, ord)
		members = append(members, ms[:hi])
	}
	return kept, members
}

func randomPointSet(rng *rand.Rand) *geom.PointSet {
	dim := 1 + rng.Intn(4)
	n := 1 + rng.Intn(150)
	set := geom.NewPointSet(dim, n)
	coords := make([]float64, dim)
	for i := 0; i < n; i++ {
		for k := range coords {
			coords[k] = rng.NormFloat64() * 15
		}
		set.AppendRaw(uint64(i), coords)
	}
	return set
}

// TestCellIndexMatchesMapReference: on random point sets and radii — small
// radii force the sparse CSR layout, large ones the dense counting sort —
// the CSR index reports the identical per-cell membership, count, and
// blockCount as the map-based reference for every occupied and a sample of
// empty cells.
func TestCellIndexMatchesMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomPointSet(rng)
		// Radii spanning the dense/sparse split: ~1e-6 yields grids with
		// far more cells than maxDenseCells allows.
		r := []float64{1e-6, 0.1, 1, 5, 50}[rng.Intn(5)]

		var stats Stats
		csr := buildCellIndex(set, r, &stats)
		ref := buildMapCellIndex(set, r)

		if stats.PointsIndexed != int64(set.Len()) {
			t.Logf("seed %d: PointsIndexed = %d, want %d", seed, stats.PointsIndexed, set.Len())
			return false
		}
		for ord, want := range ref.cells {
			got := csr.members(ord)
			if len(got) != len(want) || csr.count(ord) != len(want) {
				t.Logf("seed %d: cell %d: got %v, want %v", seed, ord, got, want)
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed %d: cell %d: got %v, want %v", seed, ord, got, want)
					return false
				}
			}
		}
		// Empty cells must read as empty (dense grids only: wrapped sparse
		// ordinals admit no meaningful "random empty ordinal" probe).
		if nc := csr.grid.NumCells(); nc > 0 && nc < 1<<20 {
			for trial := 0; trial < 10; trial++ {
				ord := rng.Intn(nc)
				if _, occupied := ref.cells[ord]; occupied {
					continue
				}
				if csr.count(ord) != 0 || len(csr.members(ord)) != 0 {
					t.Logf("seed %d: empty cell %d non-empty in CSR", seed, ord)
					return false
				}
			}
		}
		// blockCount at the two radii the detector uses.
		for ord := range ref.cells {
			for _, radius := range []int{1, csr.l2} {
				if got, want := csr.blockCount(ord, radius), ref.blockCount(ord, radius); got != want {
					t.Logf("seed %d: blockCount(%d, %d) = %d, want %d", seed, ord, radius, got, want)
					return false
				}
			}
		}
		// Core-cell iteration: same ordinals, same leading core runs.
		nCore := 1 + rng.Intn(set.Len())
		wantOrds, wantMembers := ref.coreCells(nCore)
		i := 0
		ok := true
		csr.forEachCoreCell(nCore, func(ord int, members []int32) {
			if !ok {
				return
			}
			if i >= len(wantOrds) || ord != wantOrds[i] || len(members) != len(wantMembers[i]) {
				ok = false
				return
			}
			for j := range members {
				if members[j] != wantMembers[i][j] {
					ok = false
					return
				}
			}
			i++
		})
		if !ok || i != len(wantOrds) {
			t.Logf("seed %d: forEachCoreCell diverges from sorted-map walk (nCore=%d)", seed, nCore)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScanLoopsAllocFree pins the acceptance criterion that the per-point
// scan loops allocate nothing once their structures are built: the
// Nested-Loop random scan and the Cell-Based block primitives must stay at
// 0 allocs/op.
func TestScanLoopsAllocFree(t *testing.T) {
	set := geom.PointSetOf(synth.Segment(synth.Massachusetts, 2000, 3))
	order := rand.New(rand.NewSource(1)).Perm(set.Len())
	var stats Stats
	r2 := benchParams.R * benchParams.R

	pi := 0
	if allocs := testing.AllocsPerRun(50, func() {
		randomScan(set, pi, order, r2, benchParams.K, &stats)
		pi = (pi + 1) % set.Len()
	}); allocs != 0 {
		t.Errorf("randomScan allocates %v per run, want 0", allocs)
	}

	ix := buildCellIndex(set, benchParams.R, &stats)
	visit := func(ord int, members []int32) {}
	ord := 0
	if allocs := testing.AllocsPerRun(50, func() {
		ix.blockCount(ord, 1)
		ix.blockCount(ord, ix.l2)
		ix.forEachCoreCell(set.Len(), visit)
		ord = (ord + 1) % ix.grid.NumCells()
	}); allocs != 0 {
		t.Errorf("cellIndex block scans allocate %v per run, want 0", allocs)
	}
}
