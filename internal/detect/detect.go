// Package detect implements the centralized distance-threshold outlier
// detectors that DOD dispatches to partitions: the paper's candidate set
// A = {Nested-Loop, Cell-Based} (Sec. IV), a brute-force reference used by
// tests, and a kd-tree detector as an extension beyond the paper.
//
// All detectors answer the same question (Def. 2.2): among the *core*
// points, which have fewer than k neighbors within distance r, where
// neighbors are drawn from core ∪ support and a point is never its own
// neighbor.
package detect

import (
	"fmt"
	"strings"

	"dod/internal/errs"
	"dod/internal/geom"
)

// Kind names a detector class.
type Kind int

// Detector kinds. NestedLoop and CellBased form the paper's algorithm
// candidate set A; BruteForce and KDTree are reference/extension detectors.
// The zero value is Unspecified so configuration structs can distinguish
// "not set" from an explicit choice.
const (
	Unspecified Kind = iota
	BruteForce
	NestedLoop
	CellBased
	KDTree
	CellBasedL2
	Pivot
	PGraph
	SSample
)

// String returns the canonical detector name.
func (k Kind) String() string {
	switch k {
	case Unspecified:
		return "Unspecified"
	case BruteForce:
		return "BruteForce"
	case NestedLoop:
		return "Nested-Loop"
	case CellBased:
		return "Cell-Based"
	case KDTree:
		return "KD-Tree"
	case CellBasedL2:
		return "Cell-Based-L2"
	case Pivot:
		return "Pivot"
	case PGraph:
		return "Prox-Graph"
	case SSample:
		return "Sens-Sample"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Approximate reports whether the kind may return verdicts that differ
// from the exact (brute-force) answer. Approximate kinds are only eligible
// for planning when the caller opts in (Config.AllowApprox at the public
// API); every other kind is exact and bit-identical to BruteForce.
func (k Kind) Approximate() bool { return k == SSample }

// ParseKind resolves a detector name back to its Kind — the inverse of
// String. Matching is case-insensitive and ignores hyphens, so
// "CellBased", "cell-based" and "Cell-Based" all parse. Failures match
// errs.ErrBadParams.
func ParseKind(name string) (Kind, error) {
	norm := strings.ToLower(strings.ReplaceAll(name, "-", ""))
	for _, k := range []Kind{BruteForce, NestedLoop, CellBased, KDTree, CellBasedL2, Pivot, PGraph, SSample} {
		if norm == strings.ToLower(strings.ReplaceAll(k.String(), "-", "")) {
			return k, nil
		}
	}
	return Unspecified, errs.BadParams("unknown detector %q", name)
}

// Set implements flag.Value, so a *Kind can be passed to flag.Var.
func (k *Kind) Set(name string) error {
	parsed, err := ParseKind(name)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Params are the distance-threshold outlier parameters of Def. 2.2.
type Params struct {
	R float64 // distance threshold; neighbors satisfy dist <= R
	K int     // neighbor-count threshold; outliers have fewer than K neighbors
}

// Validate reports whether the parameters are usable. Failures match
// errs.ErrBadParams via errors.Is.
func (p Params) Validate() error {
	if p.R <= 0 {
		return errs.BadParams("distance threshold r must be positive, got %g", p.R)
	}
	if p.K < 1 {
		return errs.BadParams("neighbor threshold k must be >= 1, got %d", p.K)
	}
	return nil
}

// Stats records the work a detector performed. The experiments use
// DistComps as the deterministic cost measure when replaying reducer tasks
// through the cluster simulator.
type Stats struct {
	DistComps     int64 // pairwise distance evaluations
	PointsIndexed int64 // points hashed into a grid/tree (Cell-Based, KD-Tree)
	CellsPruned   int64 // grid cells resolved without per-point work
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.DistComps += other.DistComps
	s.PointsIndexed += other.PointsIndexed
	s.CellsPruned += other.CellsPruned
}

// Cost returns a scalar work measure: one unit per distance computation
// plus one per indexed point (the Cell-Based "scan and index" term of
// Lemma 4.2).
func (s Stats) Cost() int64 { return s.DistComps + s.PointsIndexed }

// Result is a detector's output on one partition.
type Result struct {
	OutlierIDs []uint64 // IDs of core points with fewer than K neighbors
	Stats      Stats
}

// Detector is a centralized distance-threshold outlier detection algorithm.
// Implementations must be deterministic for a fixed seed and must not
// mutate the input slices.
type Detector interface {
	Kind() Kind
	// Detect classifies the core points using core ∪ support as the
	// neighbor pool and returns the outliers among core.
	Detect(core, support []geom.Point, params Params) Result
}

// setDetector is the columnar fast path every built-in detector
// implements: all holds the core points first (indices [0, nCore)) followed
// by the support points, and the detector classifies the core prefix.
type setDetector interface {
	detectSet(all *geom.PointSet, nCore int, params Params) Result
}

// DetectSet runs d on a columnar point set without converting back to row
// points: all must hold the core points as its first nCore entries and the
// support points after them. For the built-in detectors this is the
// zero-conversion entry the reduce path uses; third-party Detectors fall
// back to a materialized Detect call. Results are identical to Detect on
// the equivalent slices.
func DetectSet(d Detector, all *geom.PointSet, nCore int, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if nCore == 0 {
		return Result{}
	}
	if sd, ok := d.(setDetector); ok {
		return sd.detectSet(all, nCore, params)
	}
	pts := all.Points()
	return d.Detect(pts[:nCore], pts[nCore:], params)
}

// rowDetect adapts the public row-oriented Detect contract onto a
// detector's columnar kernel: validate, convert core+support into one
// contiguous PointSet (core first), and dispatch. Every built-in Detect
// method is this thin conversion layer.
func rowDetect(d setDetector, core, support []geom.Point, params Params) Result {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if len(core) == 0 {
		return Result{}
	}
	all := geom.NewPointSet(core[0].Dim(), len(core)+len(support))
	for _, p := range core {
		all.Append(p)
	}
	for _, p := range support {
		all.Append(p)
	}
	return d.detectSet(all, len(core), params)
}

// New constructs a detector of the given kind. Seed drives any internal
// randomization (the Nested-Loop scan order); detectors that use no
// randomness ignore it.
func New(kind Kind, seed int64) Detector {
	switch kind {
	case BruteForce:
		return bruteForceDetector{}
	case NestedLoop:
		return nestedLoopDetector{seed: seed}
	case CellBased:
		return cellBasedDetector{seed: seed}
	case KDTree:
		return kdTreeDetector{}
	case CellBasedL2:
		return cellBasedL2Detector{}
	case Pivot:
		return pivotDetector{seed: seed}
	case PGraph:
		return pgraphDetector{seed: seed}
	case SSample:
		return ssampleDetector{seed: seed}
	default:
		panic(fmt.Sprintf("detect: unknown kind %d", int(kind)))
	}
}

// bruteForceDetector counts every pairwise distance with no early exit.
// It is the semantic reference implementation: O(|core|·|all|).
type bruteForceDetector struct{}

func (bruteForceDetector) Kind() Kind { return BruteForce }

func (d bruteForceDetector) Detect(core, support []geom.Point, params Params) Result {
	return rowDetect(d, core, support, params)
}

func (bruteForceDetector) detectSet(all *geom.PointSet, nCore int, params Params) Result {
	var res Result
	n := all.Len()
	r2 := params.R * params.R
	// The full scan has no early exit, so the wide counting kernel applies:
	// verdicts and DistComps are identical to the scalar pairwise loop.
	for i := 0; i < nCore; i++ {
		id := all.IDs[i]
		neighbors, compared := all.CountWithin2Coords(all.CoordsAt(i), id, 0, n, r2)
		res.Stats.DistComps += int64(compared)
		if neighbors < params.K {
			res.OutlierIDs = append(res.OutlierIDs, id)
		}
	}
	return res
}
