package detect

import (
	"math/rand"
	"sort"
	"testing"

	"dod/internal/geom"
)

var allKinds = []Kind{BruteForce, NestedLoop, CellBased, KDTree, CellBasedL2, Pivot, PGraph}

func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cluster generates n points around (cx, cy) within a small radius.
func cluster(rng *rand.Rand, startID uint64, n int, cx, cy, spread float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID:     startID + uint64(i),
			Coords: []float64{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread},
		}
	}
	return pts
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		BruteForce: "BruteForce",
		NestedLoop: "Nested-Loop",
		CellBased:  "Cell-Based",
		KDTree:     "KD-Tree",
		Kind(99):   "Kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{R: 1, K: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{R: 0, K: 1}).Validate(); err == nil {
		t.Error("r=0 accepted")
	}
	if err := (Params{R: 1, K: 0}).Validate(); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestObviousOutlier(t *testing.T) {
	// A tight cluster of 10 points plus one far-away point.
	rng := rand.New(rand.NewSource(1))
	core := cluster(rng, 0, 10, 0, 0, 0.1)
	core = append(core, geom.Point{ID: 100, Coords: []float64{50, 50}})
	params := Params{R: 2, K: 3}
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, nil, params)
		if got := sortedIDs(res.OutlierIDs); !equalIDs(got, []uint64{100}) {
			t.Errorf("%v: outliers = %v, want [100]", kind, got)
		}
	}
}

func TestAllInliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	core := cluster(rng, 0, 20, 5, 5, 0.2)
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, nil, Params{R: 3, K: 4})
		if len(res.OutlierIDs) != 0 {
			t.Errorf("%v: got outliers %v in a tight cluster", kind, res.OutlierIDs)
		}
	}
}

func TestAllOutliers(t *testing.T) {
	// Points spread far apart relative to r: everyone is an outlier.
	core := []geom.Point{
		{ID: 1, Coords: []float64{0, 0}},
		{ID: 2, Coords: []float64{100, 0}},
		{ID: 3, Coords: []float64{0, 100}},
		{ID: 4, Coords: []float64{100, 100}},
	}
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, nil, Params{R: 5, K: 1})
		if got := sortedIDs(res.OutlierIDs); !equalIDs(got, []uint64{1, 2, 3, 4}) {
			t.Errorf("%v: outliers = %v, want all", kind, got)
		}
	}
}

func TestSupportPointsRescueBorderPoint(t *testing.T) {
	// Core point p has no core neighbors, but k support points within r:
	// the support must make it an inlier (Lemma 3.1's necessity direction).
	core := []geom.Point{{ID: 1, Coords: []float64{0, 0}}}
	support := []geom.Point{
		{ID: 2, Coords: []float64{1, 0}},
		{ID: 3, Coords: []float64{0, 1}},
		{ID: 4, Coords: []float64{-1, 0}},
	}
	params := Params{R: 1.5, K: 3}
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, support, params)
		if len(res.OutlierIDs) != 0 {
			t.Errorf("%v: support points ignored, outliers = %v", kind, res.OutlierIDs)
		}
	}
}

func TestSupportPointsAreNotClassified(t *testing.T) {
	// Support points themselves must never be reported, even when isolated.
	core := cluster(rand.New(rand.NewSource(3)), 0, 10, 0, 0, 0.1)
	support := []geom.Point{{ID: 999, Coords: []float64{80, 80}}}
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, support, Params{R: 2, K: 3})
		for _, id := range res.OutlierIDs {
			if id == 999 {
				t.Errorf("%v reported a support point as outlier", kind)
			}
		}
	}
}

func TestExactNeighborBoundary(t *testing.T) {
	// Neighbor at exactly distance r counts (<=, Def. 2.1).
	core := []geom.Point{{ID: 1, Coords: []float64{0, 0}}}
	support := []geom.Point{{ID: 2, Coords: []float64{3, 4}}} // dist exactly 5
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, support, Params{R: 5, K: 1})
		if len(res.OutlierIDs) != 0 {
			t.Errorf("%v: boundary neighbor not counted", kind)
		}
		res = New(kind, 7).Detect(core, support, Params{R: 4.999, K: 1})
		if !equalIDs(res.OutlierIDs, []uint64{1}) {
			t.Errorf("%v: sub-boundary point wrongly counted", kind)
		}
	}
}

func TestKBoundary(t *testing.T) {
	// Point with exactly k neighbors is an inlier; k-1 neighbors is outlier.
	core := []geom.Point{{ID: 1, Coords: []float64{0, 0}}}
	support := []geom.Point{
		{ID: 2, Coords: []float64{0.1, 0}},
		{ID: 3, Coords: []float64{0, 0.1}},
	}
	for _, kind := range allKinds {
		if res := New(kind, 7).Detect(core, support, Params{R: 1, K: 2}); len(res.OutlierIDs) != 0 {
			t.Errorf("%v: exactly k neighbors should be inlier", kind)
		}
		if res := New(kind, 7).Detect(core, support, Params{R: 1, K: 3}); !equalIDs(res.OutlierIDs, []uint64{1}) {
			t.Errorf("%v: k-1 neighbors should be outlier", kind)
		}
	}
}

func TestEmptyCore(t *testing.T) {
	support := cluster(rand.New(rand.NewSource(4)), 0, 5, 0, 0, 1)
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(nil, support, Params{R: 1, K: 2})
		if len(res.OutlierIDs) != 0 {
			t.Errorf("%v: empty core produced outliers", kind)
		}
	}
}

func TestSinglePoint(t *testing.T) {
	core := []geom.Point{{ID: 42, Coords: []float64{1, 1}}}
	for _, kind := range allKinds {
		res := New(kind, 7).Detect(core, nil, Params{R: 1, K: 1})
		if !equalIDs(res.OutlierIDs, []uint64{42}) {
			t.Errorf("%v: lone point must be outlier, got %v", kind, res.OutlierIDs)
		}
	}
}

// TestDetectorEquivalence is the central cross-detector property test: all
// four detectors must produce the identical outlier set on randomized
// workloads with varied density regimes.
func TestDetectorEquivalence(t *testing.T) {
	scenarios := []struct {
		name   string
		spread float64
		n      int
		r      float64
		k      int
	}{
		{"dense", 0.5, 300, 2, 4},
		{"medium", 5, 300, 2, 4},
		{"sparse", 50, 300, 2, 4},
		{"highk", 3, 200, 3, 20},
		{"tiny-r", 10, 200, 0.05, 2},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			var core, support []geom.Point
			for c := 0; c < 3; c++ {
				cx, cy := rng.Float64()*40, rng.Float64()*40
				core = append(core, cluster(rng, uint64(c*1000), sc.n/3, cx, cy, sc.spread)...)
			}
			support = cluster(rng, 50000, sc.n/5, 20, 20, sc.spread*2)

			ref := New(BruteForce, 0).Detect(core, support, Params{R: sc.r, K: sc.k})
			want := sortedIDs(ref.OutlierIDs)
			for _, kind := range allKinds[1:] {
				res := New(kind, 123).Detect(core, support, Params{R: sc.r, K: sc.k})
				got := sortedIDs(res.OutlierIDs)
				if !equalIDs(got, want) {
					t.Errorf("%v disagrees with BruteForce:\n got %v\nwant %v", kind, got, want)
				}
			}
		})
	}
}

func TestDetectorEquivalence3D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{
			rng.Float64() * 20, rng.Float64() * 20, rng.Float64() * 20,
		}}
	}
	params := Params{R: 3, K: 5}
	want := sortedIDs(New(BruteForce, 0).Detect(pts, nil, params).OutlierIDs)
	for _, kind := range allKinds[1:] {
		got := sortedIDs(New(kind, 5).Detect(pts, nil, params).OutlierIDs)
		if !equalIDs(got, want) {
			t.Errorf("%v disagrees in 3D: got %d outliers, want %d", kind, len(got), len(want))
		}
	}
}

func TestNestedLoopSeedIndependence(t *testing.T) {
	// The scan order is random but the verdicts must not depend on the seed.
	rng := rand.New(rand.NewSource(6))
	core := cluster(rng, 0, 150, 0, 0, 8)
	params := Params{R: 2, K: 4}
	want := sortedIDs(New(NestedLoop, 1).Detect(core, nil, params).OutlierIDs)
	for seed := int64(2); seed < 10; seed++ {
		got := sortedIDs(New(NestedLoop, seed).Detect(core, nil, params).OutlierIDs)
		if !equalIDs(got, want) {
			t.Errorf("seed %d changes verdicts", seed)
		}
	}
}

func TestNestedLoopEarlyExitCheaperOnDense(t *testing.T) {
	// Lemma 4.1: same cardinality, 4x denser domain → fewer comparisons.
	rng := rand.New(rand.NewSource(8))
	makeUniform := func(extent float64) []geom.Point {
		pts := make([]geom.Point, 2000)
		for i := range pts {
			pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * extent, rng.Float64() * extent}}
		}
		return pts
	}
	dense := makeUniform(50)
	sparse := makeUniform(100) // 4x the area
	params := Params{R: 5, K: 4}
	nl := New(NestedLoop, 3)
	denseCost := nl.Detect(dense, nil, params).Stats.DistComps
	sparseCost := nl.Detect(sparse, nil, params).Stats.DistComps
	if sparseCost <= denseCost {
		t.Errorf("sparse cost %d should exceed dense cost %d", sparseCost, denseCost)
	}
}

func TestCellBasedPruningOnDense(t *testing.T) {
	// A very dense uniform dataset should be resolved almost entirely by
	// the L1 inlier rule: near zero distance computations.
	rng := rand.New(rand.NewSource(10))
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * 10, rng.Float64() * 10}}
	}
	res := New(CellBased, 0).Detect(pts, nil, Params{R: 5, K: 4})
	if res.Stats.DistComps > int64(len(pts)) {
		t.Errorf("dense data: %d distance comps, want near zero (pruning failed)", res.Stats.DistComps)
	}
	if res.Stats.CellsPruned == 0 {
		t.Error("no cells pruned on dense data")
	}
}

func TestCellBasedPruningOnVerySparse(t *testing.T) {
	// Points isolated beyond 2r from each other: the L2 outlier rule should
	// fire with no distance computations.
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{ID: uint64(i), Coords: []float64{float64(i) * 100, 0}})
	}
	res := New(CellBased, 0).Detect(pts, nil, Params{R: 5, K: 4})
	if len(res.OutlierIDs) != 50 {
		t.Errorf("got %d outliers, want 50", len(res.OutlierIDs))
	}
	if res.Stats.DistComps != 0 {
		t.Errorf("sparse isolated points: %d distance comps, want 0", res.Stats.DistComps)
	}
}

func TestCellSideAndL2Radius(t *testing.T) {
	if got := CellSide(2, 5.0); got <= 1.76 || got >= 1.77 {
		t.Errorf("CellSide(2,5) = %g, want ≈ 1.7678", got)
	}
	if got := L2Radius(2); got != 3 {
		t.Errorf("L2Radius(2) = %d, want 3 (49-cell block)", got)
	}
	if got := L2Radius(1); got != 2 {
		t.Errorf("L2Radius(1) = %d, want 2", got)
	}
	if got := L2Radius(4); got != 4 {
		t.Errorf("L2Radius(4) = %d, want 4", got)
	}
}

func TestStatsAddAndCost(t *testing.T) {
	var s Stats
	s.Add(Stats{DistComps: 3, PointsIndexed: 2, CellsPruned: 1})
	s.Add(Stats{DistComps: 7, PointsIndexed: 8, CellsPruned: 9})
	if s.DistComps != 10 || s.PointsIndexed != 10 || s.CellsPruned != 10 {
		t.Errorf("Add = %+v", s)
	}
	if s.Cost() != 20 {
		t.Errorf("Cost = %d, want 20", s.Cost())
	}
}

func TestDetectDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	core := cluster(rng, 0, 50, 0, 0, 5)
	support := cluster(rng, 1000, 20, 3, 3, 5)
	coreCopy := make([]geom.Point, len(core))
	supportCopy := make([]geom.Point, len(support))
	for i, p := range core {
		coreCopy[i] = p.Clone()
	}
	for i, p := range support {
		supportCopy[i] = p.Clone()
	}
	for _, kind := range allKinds {
		New(kind, 7).Detect(core, support, Params{R: 2, K: 3})
		for i := range core {
			if !core[i].Equal(coreCopy[i]) {
				t.Fatalf("%v mutated core[%d]", kind, i)
			}
		}
		for i := range support {
			if !support[i].Equal(supportCopy[i]) {
				t.Fatalf("%v mutated support[%d]", kind, i)
			}
		}
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Kind(42), 0)
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, kind := range allKinds {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic on invalid params", kind)
				}
			}()
			New(kind, 0).Detect([]geom.Point{{ID: 1, Coords: []float64{0, 0}}}, nil, Params{R: -1, K: 1})
		}()
	}
}
