package dod

import (
	"dod/internal/dbscan"
	"dod/internal/knn"
	"dod/internal/loci"
)

// DBSCANResult maps each input point ID to a cluster label (0-based) or
// DBSCANNoise.
type DBSCANResult = dbscan.Result

// DBSCANNoise is the label of unclustered points.
const DBSCANNoise = dbscan.Noise

// DBSCANConfig controls distributed density-based clustering.
type DBSCANConfig struct {
	// Eps is the neighborhood radius.
	Eps float64
	// MinPts is the minimum neighborhood size (including the point itself)
	// for a core point.
	MinPts int
	// NumPartitions is the uniSpace grid size; default 16.
	NumPartitions int
	// NumReducers is the reduce-task count; default 4.
	NumReducers int
	// Parallelism bounds concurrent task goroutines; default GOMAXPROCS.
	Parallelism int
	// Seed drives the engine; runs are reproducible.
	Seed int64
}

// DBSCAN clusters points with density-based clustering on the same
// supporting-area MapReduce framework as outlier detection — the
// adaptation the paper describes in Sec. III-B. Results match centralized
// DBSCAN up to cluster renumbering and the standard border-point
// ambiguity.
func DBSCAN(points []Point, cfg DBSCANConfig) (*DBSCANResult, error) {
	return dbscan.ClusterDistributed(points, dbscan.Params{Eps: cfg.Eps, MinPts: cfg.MinPts}, dbscan.Options{
		NumPartitions: cfg.NumPartitions,
		NumReducers:   cfg.NumReducers,
		Parallelism:   cfg.Parallelism,
		Seed:          cfg.Seed,
	})
}

// DBSCANCentralized clusters points on a single machine.
func DBSCANCentralized(points []Point, eps float64, minPts int) (*DBSCANResult, error) {
	return dbscan.Cluster(points, dbscan.Params{Eps: eps, MinPts: minPts})
}

// LOCIConfig controls distributed LOCI outlier detection.
type LOCIConfig struct {
	// R is the sampling-neighborhood radius.
	R float64
	// Alpha is the counting-radius factor in (0, 1]; default 0.5.
	Alpha float64
	// KSigma is the deviation threshold; default 3.
	KSigma float64
	// NumPartitions is the uniSpace grid size; default 16.
	NumPartitions int
	// NumReducers is the reduce-task count; default 4.
	NumReducers int
	// Parallelism bounds concurrent task goroutines; default GOMAXPROCS.
	Parallelism int
	// Seed drives the engine; runs are reproducible.
	Seed int64
}

// LOCI detects multi-granularity density anomalies (Papadimitriou et al.)
// on the supporting-area MapReduce framework — the second adaptation the
// paper describes in Sec. III-B. A point is flagged when its local density
// sits more than KSigma deviations below its neighborhood's typical local
// density. Returns sorted outlier IDs, identical to LOCICentralized.
func LOCI(points []Point, cfg LOCIConfig) ([]uint64, error) {
	return loci.DetectDistributed(points,
		loci.Params{R: cfg.R, Alpha: cfg.Alpha, KSigma: cfg.KSigma},
		loci.Options{
			NumPartitions: cfg.NumPartitions,
			NumReducers:   cfg.NumReducers,
			Parallelism:   cfg.Parallelism,
			Seed:          cfg.Seed,
		})
}

// LOCICentralized runs the LOCI test on a single machine.
func LOCICentralized(points []Point, r, alpha, kSigma float64) ([]uint64, error) {
	return loci.Detect(points, loci.Params{R: r, Alpha: alpha, KSigma: kSigma})
}

// KNNOutlier is one ranked kNN outlier: a point and the distance to its
// k-th nearest neighbor.
type KNNOutlier = knn.Outlier

// KNNConfig controls distributed top-n kNN outlier detection.
type KNNConfig struct {
	// K selects which nearest neighbor's distance ranks a point.
	K int
	// N is how many top outliers to report.
	N int
	// SupportRadius tunes round-1 replication; zero auto-tunes.
	SupportRadius float64
	// NumPartitions is the uniSpace grid size; default 16.
	NumPartitions int
	// NumReducers is the reduce-task count; default 4.
	NumReducers int
	// Parallelism bounds concurrent task goroutines; default GOMAXPROCS.
	Parallelism int
	// Seed drives the engine; runs are reproducible.
	Seed int64
}

// KNNOutliers computes the exact top-N points by distance to their K-th
// nearest neighbor (Ramaswamy et al.'s outlier semantics — the definition
// the paper's message-passing related work distributes) using a two-round
// supporting-area MapReduce algorithm. Results are ranked by descending
// distance, ties by ascending ID, and match KNNOutliersCentralized exactly.
func KNNOutliers(points []Point, cfg KNNConfig) ([]KNNOutlier, error) {
	return knn.TopNDistributed(points, knn.Params{K: cfg.K, N: cfg.N}, knn.Options{
		SupportRadius: cfg.SupportRadius,
		NumPartitions: cfg.NumPartitions,
		NumReducers:   cfg.NumReducers,
		Parallelism:   cfg.Parallelism,
		Seed:          cfg.Seed,
	})
}

// KNNOutliersCentralized ranks the top-n kNN outliers on a single machine.
func KNNOutliersCentralized(points []Point, k, n int) ([]KNNOutlier, error) {
	return knn.TopN(points, knn.Params{K: k, N: n})
}
