package dod

import (
	"context"
	"time"

	"dod/internal/dist"
)

// Engine selects where a detection run's map and reduce tasks execute.
type Engine string

const (
	// EngineLocal executes tasks on in-process goroutines (the default).
	EngineLocal Engine = "local"
	// EngineCluster ships tasks to the workers registered with the run's
	// Coordinator — real distributed execution over the network, with
	// results byte-identical to EngineLocal on the same seed.
	EngineCluster Engine = "cluster"
)

// CoordinatorConfig tunes a cluster Coordinator. The zero value listens on
// a loopback ephemeral port with production defaults.
type CoordinatorConfig struct {
	// Listen is the address to bind ("host:port"); default "127.0.0.1:0".
	// Bind a routable address to accept workers from other machines.
	Listen string
	// LeaseTTL is how long a worker may go silent before it is declared
	// lost and its tasks are re-executed elsewhere; default 10s.
	LeaseTTL time.Duration
	// MaxTaskDispatches bounds re-execution plus speculation per task
	// before the job fails with ErrWorkerLost; default 8.
	MaxTaskDispatches int
	// TaskTimeout, when positive, withdraws and re-queues any single
	// dispatch that has run longer than this, even if its worker is still
	// heartbeating — the backstop for results repeatedly lost in transit.
	TaskTimeout time.Duration
	// JournalPath, when set, enables checkpoint/resume: accepted task
	// results are fsynced to this append-only log before delivery, and a
	// restarted coordinator pointed at the same path answers already-
	// settled tasks from disk instead of re-running them. The journal is
	// keyed by job spec content, so it survives process restarts.
	JournalPath string
	// Logf, when set, receives scheduling events (worker joins and losses,
	// re-dispatches, speculative duplicates).
	Logf func(format string, args ...any)
}

// Coordinator is the control plane of a worker cluster: workers (started
// with cmd/dodworker, or dist.Worker in-process) join it over HTTP, and
// detection runs with Engine: EngineCluster ship their tasks to it. It
// serves GET /metrics (Prometheus text, dod_dist_* series) and
// GET /healthz on the same listener.
type Coordinator struct {
	c *dist.Coordinator
}

// NewCoordinator starts a coordinator; Close releases its listener and
// aborts in-flight jobs.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	c, err := dist.NewCoordinator(dist.Config{
		Listen:            cfg.Listen,
		LeaseTTL:          cfg.LeaseTTL,
		MaxTaskDispatches: cfg.MaxTaskDispatches,
		TaskTimeout:       cfg.TaskTimeout,
		JournalPath:       cfg.JournalPath,
		Logf:              cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &Coordinator{c: c}, nil
}

// URL returns the coordinator's base URL — the address workers join, e.g.
// "http://127.0.0.1:41327".
func (c *Coordinator) URL() string { return c.c.URL() }

// Workers returns the number of workers currently holding live leases.
func (c *Coordinator) Workers() int { return c.c.Workers() }

// WaitForWorkers blocks until at least n workers have joined or ctx
// expires.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	return c.c.WaitForWorkers(ctx, n)
}

// Close shuts the coordinator down. In-flight cluster runs fail with
// ErrJobAborted; workers observe the shutdown and exit their run loops.
func (c *Coordinator) Close() error { return c.c.Close() }

// ClusterStats is a point-in-time snapshot of a coordinator's scheduling
// counters.
type ClusterStats struct {
	// Workers holds live leases right now.
	Workers int
	// Dispatches counts task payloads handed to workers, including
	// re-executions and speculative duplicates.
	Dispatches int64
	// TasksOK / TasksErr / TasksLate count accepted results, worker-side
	// task failures, and discarded duplicate results.
	TasksOK, TasksErr, TasksLate int64
	// BytesShipped / BytesCollected measure task and result payload bytes
	// over the wire.
	BytesShipped, BytesCollected int64
	// WorkersLost counts lease expiries; Redispatches the task
	// re-executions they caused; Speculative the straggler duplicates.
	WorkersLost, Redispatches, Speculative int64
	// Nacks counts dispatches whose payload arrived at a worker corrupted
	// and was reported back; TaskTimeouts counts dispatches withdrawn by
	// the per-task timeout backstop; JournalReplays counts tasks settled
	// from the checkpoint journal instead of a worker.
	Nacks, TaskTimeouts, JournalReplays int64
}

// Stats snapshots the coordinator's scheduling counters — the same values
// exported on /metrics as dod_dist_* series.
func (c *Coordinator) Stats() ClusterStats {
	s := c.c.Stats()
	return ClusterStats{
		Workers:        s.Workers,
		Dispatches:     s.Dispatches,
		TasksOK:        s.TasksOK,
		TasksErr:       s.TasksErr,
		TasksLate:      s.TasksLate,
		BytesShipped:   s.BytesShipped,
		BytesCollected: s.BytesCollected,
		WorkersLost:    s.WorkersLost,
		Redispatches:   s.Redispatches,
		Speculative:    s.Speculative,
		Nacks:          s.Nacks,
		TaskTimeouts:   s.TaskTimeouts,
		JournalReplays: s.JournalReplays,
	}
}
