package dod

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dod/internal/dist"
)

// startTestCluster boots a coordinator plus n in-process workers — the
// same code path cmd/dodworker runs, minus the process boundary.
func startTestCluster(t *testing.T, n int) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker(dist.WorkerConfig{
			Coordinator: coord.URL(),
			Name:        string(rune('a' + i)),
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(ctx) //nolint:errcheck
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}
	if err := coord.WaitForWorkers(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	return coord
}

func TestDetectEngineCluster(t *testing.T) {
	pts := testDataset(1500, 5)
	base := Config{R: 5, K: 4, SampleRate: 1, Seed: 6}

	local, err := Detect(pts, base)
	if err != nil {
		t.Fatal(err)
	}

	coord := startTestCluster(t, 3)
	clustered := base
	clustered.Engine = EngineCluster
	clustered.Coordinator = coord
	res, err := Detect(pts, clustered)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(local.OutlierIDs, res.OutlierIDs) {
		t.Errorf("cluster engine diverged: %d vs %d outliers", len(res.OutlierIDs), len(local.OutlierIDs))
	}
	if res.Report.Engine != "cluster" || local.Report.Engine != "local" {
		t.Errorf("report engines: %q / %q", res.Report.Engine, local.Report.Engine)
	}
	if st := coord.Stats(); st.TasksOK == 0 || st.BytesShipped == 0 {
		t.Errorf("coordinator saw no work: %+v", st)
	}
	// The coordinator outlives the run and can serve another.
	if _, err := Detect(pts, clustered); err != nil {
		t.Fatalf("second run on the same coordinator: %v", err)
	}
}

func TestEngineValidation(t *testing.T) {
	pts := testDataset(100, 1)
	coord := startTestCluster(t, 1)

	badParams := map[string]Config{
		"cluster without coordinator": {R: 5, K: 4, Engine: EngineCluster},
		"coordinator without cluster": {R: 5, K: 4, Coordinator: coord},
		"unknown engine":              {R: 5, K: 4, Engine: Engine("fog")},
	}
	for name, cfg := range badParams {
		if _, err := Detect(pts, cfg); !errors.Is(err, ErrBadParams) {
			t.Errorf("%s: err = %v, want ErrBadParams", name, err)
		}
	}

	// The Domain baseline needs a second job workers can't build; it must
	// be rejected up front, not fail mid-run.
	_, err := Detect(pts, Config{
		R: 5, K: 4, Strategy: StrategyDomain, SampleRate: 1,
		Engine: EngineCluster, Coordinator: coord,
	})
	if err == nil {
		t.Error("StrategyDomain accepted on the cluster engine")
	}
}

func TestEngineClusterClosedCoordinator(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coord.Close()
	_, err = Detect(testDataset(200, 1), Config{
		R: 5, K: 4, SampleRate: 1,
		Engine: EngineCluster, Coordinator: coord,
	})
	if !errors.Is(err, ErrJobAborted) {
		t.Errorf("Detect on closed coordinator = %v, want ErrJobAborted", err)
	}
}

// TestClusterProxGraphIdentity: the proximity-graph tactic must stay
// bit-identical to BruteForce when the detection job runs on the loopback
// cluster — the certification fallback makes the graph walk exact, and
// the plan encoding must carry the new kind across the wire.
func TestClusterProxGraphIdentity(t *testing.T) {
	pts := testDataset(1500, 9)
	base := Config{R: 5, K: 4, SampleRate: 1, Seed: 3, Strategy: StrategyCDriven, Detector: ProxGraph}

	truth, err := Detect(pts, Config{R: 5, K: 4, SampleRate: 1, Seed: 3, Strategy: StrategyCDriven, Detector: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Detect(pts, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.OutlierIDs, truth.OutlierIDs) {
		t.Fatalf("local Prox-Graph diverged from BruteForce: %d vs %d outliers",
			len(local.OutlierIDs), len(truth.OutlierIDs))
	}

	coord := startTestCluster(t, 3)
	clustered := base
	clustered.Engine = EngineCluster
	clustered.Coordinator = coord
	res, err := Detect(pts, clustered)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.OutlierIDs, local.OutlierIDs) {
		t.Errorf("cluster Prox-Graph diverged from local: %d vs %d outliers",
			len(res.OutlierIDs), len(local.OutlierIDs))
	}
	if res.Report.DistComps != local.Report.DistComps {
		t.Errorf("cluster DistComps %d != local %d", res.Report.DistComps, local.Report.DistComps)
	}
}
