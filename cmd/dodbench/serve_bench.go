package main

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"time"

	"dod/internal/geom"
	"dod/internal/obs"
	"dod/internal/retry"
	"dod/internal/router"
	"dod/internal/serve"
	"dod/internal/stream"
	"dod/internal/synth"
)

// The serve section measures the NDJSON serving tier end to end over
// loopback HTTP: a single-process dodserve and a router fronting three
// shard servers, each in its "fast" wiring (wirejson codec, pooled
// buffers, coalesced support RPCs) and its "legacy" wiring (encoding/json,
// per-point shard RPCs) on the same build. The two wirings answer
// byte-identical streams — the section records that check alongside the
// throughput ratio, so a committed baseline documents both the speedup and
// that it cost nothing in behavior.

const supportRPCHelp = "boundary support round trips issued over the wire"

// serveRecord is one (tier, wiring) measurement.
type serveRecord struct {
	Tier            string  `json:"tier"` // "single" | "sharded"
	Mode            string  `json:"mode"` // "fast" | "legacy"
	Lines           int     `json:"lines"`
	BatchLines      int     `json:"batch_lines"`
	IngestPtsPerSec float64 `json:"ingest_pts_per_sec"`
	ScorePtsPerSec  float64 `json:"score_pts_per_sec"`
	// IngestAllocsPerLine is the whole-process allocation count per ingested
	// line across the loopback exchange — client, transport and server —
	// so the server-side fast path must hold ~0 for the number to approach
	// the client-side floor.
	IngestAllocsPerLine float64 `json:"ingest_allocs_per_line"`
	// SupportRPCsPer1k counts boundary support round trips per 1000 ingested
	// points, summed across the router and every shard (sharded tier only).
	SupportRPCsPer1k float64 `json:"support_rpcs_per_1k,omitempty"`
}

// serveSection is the benchFile's serving-tier section.
type serveSection struct {
	Shards               int           `json:"shards"`
	Records              []serveRecord `json:"records"`
	SingleIngestSpeedup  float64       `json:"single_ingest_speedup"`
	ShardedIngestSpeedup float64       `json:"sharded_ingest_speedup"`
	SupportRPCReduction  float64       `json:"support_rpc_reduction"`
	// ResponsesMatch is true when the fast and legacy wirings answered
	// byte-identical ingest and score streams on both tiers.
	ResponsesMatch bool `json:"responses_match"`
}

// serveBenchPoints generates the bench stream: the same clustered synthetic
// geography the kernel benchmarks use, 2-D, IDs unique from 0.
func serveBenchPoints(n int) []geom.Point {
	return synth.Segment(synth.Massachusetts, n, 3)
}

// ndjsonBatches renders points into canonical NDJSON request bodies of
// batchLines lines each — canonical so the fast parser takes its fast path,
// exactly as a well-formed client would produce.
func ndjsonBatches(pts []geom.Point, batchLines int) [][]byte {
	var batches [][]byte
	var buf []byte
	for i, p := range pts {
		buf = append(buf, `{"id":`...)
		buf = strconv.AppendUint(buf, p.ID, 10)
		buf = append(buf, `,"coords":[`...)
		for d, c := range p.Coords {
			if d > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendFloat(buf, c, 'g', -1, 64)
		}
		buf = append(buf, "]}\n"...)
		if (i+1)%batchLines == 0 || i == len(pts)-1 {
			batches = append(batches, buf)
			buf = nil
		}
	}
	return batches
}

// postAll streams every batch to url, folding each response into sum and
// returning elapsed wall time and the whole-process allocation delta.
func postAll(url string, batches [][]byte, sum *fnv64Sum) (time.Duration, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, body := range batches {
		resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			return 0, 0, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(raw))
		}
		sum.add(raw)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs, nil
}

// fnv64Sum folds response streams into one digest for cross-mode identity
// checks without retaining megabytes of NDJSON.
type fnv64Sum struct{ h uint64 }

func newSum() *fnv64Sum { return &fnv64Sum{} }

func (s *fnv64Sum) add(b []byte) {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(s.h >> (8 * i))
	}
	h.Write(seed[:]) //nolint:errcheck
	h.Write(b)       //nolint:errcheck
	s.h = h.Sum64()
}

// measureServeSingle benchmarks one wiring of the single-process tier and
// returns the record plus digests of the ingest and score streams.
func measureServeSingle(pts []geom.Point, batchLines int, legacy bool) (serveRecord, uint64, uint64, error) {
	srv, err := serve.New(serve.Config{
		Stream:     stream.Config{R: jsonParams.R, K: jsonParams.K, Dim: 2, Capacity: len(pts) + 1},
		LegacyWire: legacy,
	})
	if err != nil {
		return serveRecord{}, 0, 0, err
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	batches := ndjsonBatches(pts, batchLines)
	ingestSum, scoreSum := newSum(), newSum()
	ingestWall, mallocs, err := postAll(hs.URL+"/v1/ingest", batches, ingestSum)
	if err != nil {
		return serveRecord{}, 0, 0, err
	}
	scoreWall, _, err := postAll(hs.URL+"/v1/score", batches, scoreSum)
	if err != nil {
		return serveRecord{}, 0, 0, err
	}
	mode := "fast"
	if legacy {
		mode = "legacy"
	}
	n := float64(len(pts))
	return serveRecord{
		Tier: "single", Mode: mode, Lines: len(pts), BatchLines: batchLines,
		IngestPtsPerSec:     n / ingestWall.Seconds(),
		ScorePtsPerSec:      n / scoreWall.Seconds(),
		IngestAllocsPerLine: float64(mallocs) / n,
	}, ingestSum.h, scoreSum.h, nil
}

// measureServeSharded benchmarks one wiring of the router + 3-shard tier.
func measureServeSharded(pts []geom.Point, batchLines, shards int, legacy bool) (serveRecord, uint64, uint64, error) {
	var infos []router.ShardInfo
	var regs []*obs.Registry
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < shards; i++ {
		reg := obs.NewRegistry()
		ss, err := serve.NewShard(serve.ShardServerConfig{
			Name: fmt.Sprintf("s%d", i), R: jsonParams.R, K: jsonParams.K, Dim: 2,
			Obs: reg, Retry: retry.Policy{Base: time.Millisecond},
		})
		if err != nil {
			return serveRecord{}, 0, 0, err
		}
		hs := httptest.NewServer(ss.Handler())
		servers = append(servers, hs)
		regs = append(regs, reg)
		infos = append(infos, router.ShardInfo{Name: fmt.Sprintf("s%d", i), URL: hs.URL})
	}
	routerReg := obs.NewRegistry()
	rt, err := router.New(router.Config{
		R: jsonParams.R, K: jsonParams.K, Dim: 2, Capacity: len(pts) + 1,
		Shards: infos, Obs: routerReg,
		Retry:      retry.Policy{Base: time.Millisecond},
		LegacyWire: legacy, NoCoalesce: legacy,
	})
	if err != nil {
		return serveRecord{}, 0, 0, err
	}
	if err := rt.Start(context.Background()); err != nil {
		return serveRecord{}, 0, 0, err
	}
	defer rt.Close()
	hs := httptest.NewServer(rt.Handler())
	servers = append(servers, hs)
	regs = append(regs, routerReg)

	supportTotal := func() int64 {
		var total int64
		for _, reg := range regs {
			total += reg.Counter("dod_support_rpc_total", supportRPCHelp).Value()
		}
		return total
	}

	batches := ndjsonBatches(pts, batchLines)
	ingestSum, scoreSum := newSum(), newSum()
	rpcs0 := supportTotal()
	ingestWall, mallocs, err := postAll(hs.URL+"/v1/ingest", batches, ingestSum)
	if err != nil {
		return serveRecord{}, 0, 0, err
	}
	rpcs1 := supportTotal()
	scoreWall, _, err := postAll(hs.URL+"/v1/score", batches, scoreSum)
	if err != nil {
		return serveRecord{}, 0, 0, err
	}
	mode := "fast"
	if legacy {
		mode = "legacy"
	}
	n := float64(len(pts))
	return serveRecord{
		Tier: "sharded", Mode: mode, Lines: len(pts), BatchLines: batchLines,
		IngestPtsPerSec:     n / ingestWall.Seconds(),
		ScorePtsPerSec:      n / scoreWall.Seconds(),
		IngestAllocsPerLine: float64(mallocs) / n,
		SupportRPCsPer1k:    float64(rpcs1-rpcs0) / (n / 1000),
	}, ingestSum.h, scoreSum.h, nil
}

// measureServe runs all four (tier, wiring) cells and derives the ratios.
func measureServe(cfg benchRunConfig) (serveSection, error) {
	const (
		batchLines  = 1000
		serveShards = 3
	)
	singleLines := cfg.points
	shardedLines := cfg.points / 4
	if shardedLines < 2000 {
		shardedLines = 2000
	}
	singlePts := serveBenchPoints(singleLines)
	shardedPts := serveBenchPoints(shardedLines)

	sec := serveSection{Shards: serveShards, ResponsesMatch: true}

	singleFast, fi, fs, err := measureServeSingle(singlePts, batchLines, false)
	if err != nil {
		return sec, err
	}
	singleLegacy, li, ls, err := measureServeSingle(singlePts, batchLines, true)
	if err != nil {
		return sec, err
	}
	sec.ResponsesMatch = sec.ResponsesMatch && fi == li && fs == ls

	shardFast, sfi, sfs, err := measureServeSharded(shardedPts, batchLines, serveShards, false)
	if err != nil {
		return sec, err
	}
	shardLegacy, sli, sls, err := measureServeSharded(shardedPts, batchLines, serveShards, true)
	if err != nil {
		return sec, err
	}
	sec.ResponsesMatch = sec.ResponsesMatch && sfi == sli && sfs == sls

	sec.Records = []serveRecord{singleFast, singleLegacy, shardFast, shardLegacy}
	sec.SingleIngestSpeedup = singleFast.IngestPtsPerSec / singleLegacy.IngestPtsPerSec
	sec.ShardedIngestSpeedup = shardFast.IngestPtsPerSec / shardLegacy.IngestPtsPerSec
	if shardFast.SupportRPCsPer1k > 0 {
		sec.SupportRPCReduction = shardLegacy.SupportRPCsPer1k / shardFast.SupportRPCsPer1k
	}
	return sec, nil
}

// runServeCheck is the CI gate for the serving wire path: the fast and
// legacy wirings must answer byte-identical streams, the fast wiring must
// ingest at least minSpeedup times faster, and (when maxAllocs > 0) the
// loopback exchange must stay under maxAllocs allocations per line.
func runServeCheck(n int, minSpeedup, maxAllocs float64) error {
	pts := serveBenchPoints(n)
	fast, fi, fs, err := measureServeSingle(pts, 1000, false)
	if err != nil {
		return err
	}
	legacy, li, ls, err := measureServeSingle(pts, 1000, true)
	if err != nil {
		return err
	}
	if fi != li || fs != ls {
		return fmt.Errorf("servecheck: fast and legacy wire paths answered different streams (ingest %x vs %x, score %x vs %x)", fi, li, fs, ls)
	}
	speedup := fast.IngestPtsPerSec / legacy.IngestPtsPerSec
	fmt.Printf("dodbench: servecheck n=%d fast=%.0f pts/s legacy=%.0f pts/s speedup=%.2f allocs/line=%.2f min=%.2f max-allocs=%.2f\n",
		n, fast.IngestPtsPerSec, legacy.IngestPtsPerSec, speedup, fast.IngestAllocsPerLine, minSpeedup, maxAllocs)
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("servecheck: fast/legacy ingest ratio %.2f below minimum %.2f", speedup, minSpeedup)
	}
	if maxAllocs > 0 && fast.IngestAllocsPerLine > maxAllocs {
		return fmt.Errorf("servecheck: %.2f allocations per ingested line exceeds maximum %.2f", fast.IngestAllocsPerLine, maxAllocs)
	}
	return nil
}
