package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/dist"
	"dod/internal/geom"
	"dod/internal/obs"
	"dod/internal/plan"
	"dod/internal/synth"
)

// The -json mode measures the detection kernels and one end-to-end pipeline
// run, emitting a machine-readable record per benchmark. Committed
// BENCH_<date>.json files form the repository's performance trajectory:
// re-running `dodbench -json` on the same hardware class and diffing
// against the last committed baseline shows whether a change moved the hot
// paths.

// benchFile is the top-level JSON document.
type benchFile struct {
	Schema    string         `json:"schema"` // "dodbench/v1"
	Generated string         `json:"generated"`
	GoVersion string         `json:"go"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	MaxProcs  int            `json:"gomaxprocs"`
	Params    benchParams    `json:"params"`
	Kernels   []kernelRecord `json:"kernels"`
	// Parallel re-measures the tiled kernels at GOMAXPROCS workers via
	// detect.DetectSetParallel; speedup_vs_seq compares against the
	// sequential record of the same case in Kernels. On a single-core
	// machine the section still appears (speedup ≈ 1), so the schema is
	// stable across hardware.
	Parallel []parallelRecord `json:"parallel"`
	Pipeline pipelineRecord   `json:"pipeline"`
	Dist     distRecord       `json:"dist"`
	// Serve measures the NDJSON serving tier over loopback HTTP — the fast
	// wire path against the legacy one on the same build, single-process and
	// sharded — so the committed baseline documents the wire-path speedup
	// and the support-RPC coalescing factor.
	Serve serveSection `json:"serve"`
	// HighDim measures the detector tactics on a clustered 32-dimensional
	// workload — the regime where grid enumeration and kd-tree pruning
	// collapse — and records which tactic the DMT planner routes to there.
	HighDim highDimSection `json:"highdim"`
}

type benchParams struct {
	R float64 `json:"r"`
	K int     `json:"k"`
}

// kernelRecord is one detector benchmark measured via testing.Benchmark.
type kernelRecord struct {
	Name         string  `json:"name"`
	Detector     string  `json:"detector"`
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	DistComps    int64   `json:"dist_comps"` // per detection pass
	Outliers     int     `json:"outliers"`   // result size (sanity anchor)
	PointsPerSec float64 `json:"points_per_sec"`
}

// parallelRecord is a kernelRecord measured through the tiled parallel
// entry point, plus the worker count and the speedup over the sequential
// measurement of the same case.
type parallelRecord struct {
	kernelRecord
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup_vs_seq"`
}

// pipelineRecord is one traced end-to-end core.Run.
type pipelineRecord struct {
	Planner       string       `json:"planner"`
	Detector      string       `json:"detector"`
	Points        int          `json:"points"`
	Reducers      int          `json:"reducers"`
	Outliers      int          `json:"outliers"`
	DistComps     int64        `json:"dist_comps"`
	PointsIndexed int64        `json:"points_indexed"`
	ShuffleBytes  int64        `json:"shuffle_bytes"`
	WallMs        float64      `json:"wall_ms"`
	Spans         []spanRecord `json:"spans"`
}

// spanRecord flattens an obs.Trace span. Per-partition detect spans are
// aggregated by the caller into one record per stage name, keeping the
// artifact size independent of the partition count.
type spanRecord struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
}

// distRecord compares the same detection run on the in-process engine and
// on a loopback cluster (1 coordinator + workers over real HTTP on this
// machine). cluster_wall_ms includes serialization and loopback transport,
// so the gap to local_wall_ms is the runtime's overhead floor;
// bytes_shipped/bytes_collected are actual wire bytes.
type distRecord struct {
	Workers        int     `json:"workers"`
	Points         int     `json:"points"`
	Outliers       int     `json:"outliers"`
	LocalWallMs    float64 `json:"local_wall_ms"`
	ClusterWallMs  float64 `json:"cluster_wall_ms"`
	ShuffleBytes   int64   `json:"shuffle_bytes"`
	BytesShipped   int64   `json:"bytes_shipped"`
	BytesCollected int64   `json:"bytes_collected"`
	Dispatches     int64   `json:"dispatches"`
	Match          bool    `json:"match"` // cluster outliers byte-identical to local
}

// highDimSection documents the high-dimensional tactic comparison: one
// detection pass per tactic over the same planted-outlier workload, plus
// the DMT planner's routing decision on it.
type highDimSection struct {
	N       int     `json:"n"`
	Dim     int     `json:"dim"`
	R       float64 `json:"r"`
	K       int     `json:"k"`
	Planted int     `json:"planted_outliers"`
	// Tactics holds one record per exact detector; MatchBrute asserts the
	// tactic reproduced BruteForce's outlier set bit-for-bit.
	Tactics []highDimTactic `json:"tactics"`
	Planner highDimPlanner  `json:"planner"`
}

type highDimTactic struct {
	Detector   string  `json:"detector"`
	DistComps  int64   `json:"dist_comps"`
	Outliers   int     `json:"outliers"`
	MatchBrute bool    `json:"match_brute"`
	WallMs     float64 `json:"wall_ms"`
}

// highDimPlanner records the DMT run over the same workload: which tactic
// the planner assigned per partition and whether the routed plan beat the
// best single-tactic alternative on distance computations.
type highDimPlanner struct {
	Candidates  []string       `json:"candidates"`
	PicksByAlgo map[string]int `json:"picks_by_algo"`
	DistComps   int64          `json:"dist_comps"`
	Outliers    int            `json:"outliers"`
	// Single-tactic runs of the same pipeline, for the routing payoff.
	NestedLoopComps int64 `json:"nestedloop_dist_comps"`
	KDTreeComps     int64 `json:"kdtree_dist_comps"`
	// Wins: the DMT-routed plan spent fewer distance computations than
	// the best of the single-tactic alternatives.
	Wins bool `json:"wins"`
}

// benchCases mirrors internal/detect/bench_test.go so the committed JSON
// trajectory and `go test -bench` measure the same kernels.
type benchCase struct {
	name string
	kind detect.Kind
	pts  func() []geom.Point
	n    int
	dim  int
}

func jsonBenchCases() []benchCase {
	ma := func(n int) func() []geom.Point {
		return func() []geom.Point { return synth.Segment(synth.Massachusetts, n, 3) }
	}
	cloud3 := func(n int) func() []geom.Point {
		return func() []geom.Point { return synth.GaussianCloud(n, 3, 17) }
	}
	return []benchCase{
		{"NestedLoop2D/n=2000", detect.NestedLoop, ma(2000), 2000, 2},
		{"NestedLoop2D/n=8000", detect.NestedLoop, ma(8000), 8000, 2},
		{"CellBased2D/n=2000", detect.CellBased, ma(2000), 2000, 2},
		{"CellBased2D/n=8000", detect.CellBased, ma(8000), 8000, 2},
		{"CellBasedL2_2D/n=8000", detect.CellBasedL2, ma(8000), 8000, 2},
		{"KDTree2D/n=8000", detect.KDTree, ma(8000), 8000, 2},
		{"Pivot2D/n=8000", detect.Pivot, ma(8000), 8000, 2},
		{"CellBased3D/n=8000", detect.CellBased, cloud3(8000), 8000, 3},
		{"ProxGraph2D/n=8000", detect.PGraph, ma(8000), 8000, 2},
	}
}

// jsonParams matches the kernel benchmarks in internal/detect: r=5, k=4 on
// the segment analogs (the paper's Sec. VI operating point).
var jsonParams = detect.Params{R: 5, K: 4}

func measureKernel(c benchCase) kernelRecord {
	pts := c.pts()
	set := geom.PointSetOf(pts)
	d := detect.New(c.kind, 7)
	// One un-timed pass pins the deterministic work counters and result.
	ref := detect.DetectSet(d, set, set.Len(), jsonParams)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detect.DetectSet(d, set, set.Len(), jsonParams)
		}
	})
	nsPerOp := res.NsPerOp()
	rec := kernelRecord{
		Name:        c.name,
		Detector:    c.kind.String(),
		N:           c.n,
		Dim:         c.dim,
		Iters:       res.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		DistComps:   ref.Stats.DistComps,
		Outliers:    len(ref.OutlierIDs),
	}
	if nsPerOp > 0 {
		rec.PointsPerSec = float64(c.n) * 1e9 / float64(nsPerOp)
	}
	return rec
}

// parallelBenchCases is the subset of jsonBenchCases with tiled kernels —
// the ones DetectSetParallel actually spreads across workers.
func parallelBenchCases() []benchCase {
	var out []benchCase
	for _, c := range jsonBenchCases() {
		switch c.kind {
		case detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.PGraph:
			out = append(out, c)
		}
	}
	return out
}

// measureKernelParallel benchmarks one tiled kernel at the given worker
// count. seqNs is the sequential ns/op of the same case, for the speedup
// ratio; the deterministic counters (DistComps, Outliers) are asserted
// identical to the sequential pass, so a drifting tile merge shows up in
// the committed artifact as well as in tests.
func measureKernelParallel(c benchCase, workers int, seqNs int64) parallelRecord {
	pts := c.pts()
	set := geom.PointSetOf(pts)
	d := detect.New(c.kind, 7)
	seqRef := detect.DetectSet(d, set, set.Len(), jsonParams)
	ref := detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
	if ref.Stats.DistComps != seqRef.Stats.DistComps || len(ref.OutlierIDs) != len(seqRef.OutlierIDs) {
		// The parallel kernels are contractually bit-identical; refuse to
		// record a baseline that violates it.
		panic(fmt.Sprintf("%s: parallel result diverged from sequential", c.name))
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
		}
	})
	nsPerOp := res.NsPerOp()
	rec := parallelRecord{
		kernelRecord: kernelRecord{
			Name:        c.name,
			Detector:    c.kind.String(),
			N:           c.n,
			Dim:         c.dim,
			Iters:       res.N,
			NsPerOp:     nsPerOp,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			DistComps:   ref.Stats.DistComps,
			Outliers:    len(ref.OutlierIDs),
		},
		Workers: workers,
	}
	if nsPerOp > 0 {
		rec.PointsPerSec = float64(c.n) * 1e9 / float64(nsPerOp)
		rec.Speedup = float64(seqNs) / float64(nsPerOp)
	}
	return rec
}

// runParCheck is the CI speedup gate: it benchmarks the Cell-Based kernel
// sequentially and tiled at GOMAXPROCS workers, verifies bit-identity, and
// fails if the parallel/sequential throughput ratio falls below min. CI
// runs it at GOMAXPROCS=1 (min ~0.9: tiling must never cost much when
// there is nothing to parallelize) and GOMAXPROCS=4 (min ~2: the tiles
// must actually scale).
func runParCheck(n int, min float64) error {
	workers := runtime.GOMAXPROCS(0)
	pts := synth.Segment(synth.Massachusetts, n, 3)
	set := geom.PointSetOf(pts)
	d := detect.New(detect.CellBased, 7)

	seqRef := detect.DetectSet(d, set, set.Len(), jsonParams)
	parRef := detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
	if len(seqRef.OutlierIDs) != len(parRef.OutlierIDs) || seqRef.Stats != parRef.Stats {
		return fmt.Errorf("parcheck: parallel result diverged from sequential (seq %d outliers %+v, par %d outliers %+v)",
			len(seqRef.OutlierIDs), seqRef.Stats, len(parRef.OutlierIDs), parRef.Stats)
	}
	for i := range seqRef.OutlierIDs {
		if seqRef.OutlierIDs[i] != parRef.OutlierIDs[i] {
			return fmt.Errorf("parcheck: outlier %d differs: seq %d, par %d", i, seqRef.OutlierIDs[i], parRef.OutlierIDs[i])
		}
	}

	seq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detect.DetectSet(d, set, set.Len(), jsonParams)
		}
	})
	par := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
		}
	})
	ratio := float64(seq.NsPerOp()) / float64(par.NsPerOp())
	fmt.Printf("dodbench: parcheck GOMAXPROCS=%d n=%d seq=%v/op par=%v/op ratio=%.2f min=%.2f\n",
		workers, n, time.Duration(seq.NsPerOp()), time.Duration(par.NsPerOp()), ratio, min)
	if ratio < min {
		return fmt.Errorf("parcheck: parallel/sequential ratio %.2f below minimum %.2f at GOMAXPROCS=%d", ratio, min, workers)
	}
	return nil
}

// measureHighDim runs the 32-dimensional planted-outlier sphere workload
// (synth.HighDimUniform — unit-norm embedding geometry, where no
// axis-aligned box can prune a query ball) through every exact tactic
// that survives high dimension (Cell-Based's 3^d cell enumeration
// overflows at d=32, so it is excluded) and through the DMT pipeline
// with the proximity graph in the candidate set. The committed record is
// the evidence that the planner routes high-dimensional partitions to
// the graph tactic and that the routing pays off.
func measureHighDim(cfg benchRunConfig) (highDimSection, error) {
	const n, dim = 16000, 32
	params := detect.Params{R: 4, K: 4}
	pts, planted := synth.HighDimUniform(n, dim, params.R, 0.005, 3)
	set := geom.PointSetOf(pts)

	sec := highDimSection{N: n, Dim: dim, R: params.R, K: params.K, Planted: len(planted)}

	var bruteIDs []uint64
	for _, kind := range []detect.Kind{detect.BruteForce, detect.NestedLoop, detect.KDTree, detect.PGraph} {
		fmt.Fprintf(os.Stderr, "dodbench: highdim %s (n=%d d=%d)\n", kind, n, dim)
		start := time.Now()
		res := detect.DetectSet(detect.New(kind, 7), set, set.Len(), params)
		wall := time.Since(start)
		if kind == detect.BruteForce {
			bruteIDs = res.OutlierIDs
		}
		match := len(res.OutlierIDs) == len(bruteIDs)
		for i := 0; match && i < len(bruteIDs); i++ {
			match = res.OutlierIDs[i] == bruteIDs[i]
		}
		if !match {
			return sec, fmt.Errorf("highdim: %s diverged from BruteForce (%d vs %d outliers)",
				kind, len(res.OutlierIDs), len(bruteIDs))
		}
		sec.Tactics = append(sec.Tactics, highDimTactic{
			Detector:   kind.String(),
			DistComps:  res.Stats.DistComps,
			Outliers:   len(res.OutlierIDs),
			MatchBrute: match,
			WallMs:     float64(wall) / float64(time.Millisecond),
		})
	}

	input, err := core.InputFromPoints(pts, 8192)
	if err != nil {
		return sec, err
	}
	// On the sphere workload r spans the whole domain in every coordinate,
	// so each partition's supporting area covers essentially all of it:
	// every partition ships ~n points regardless of the split. Fine
	// partitioning therefore buys no locality and multiplies per-partition
	// index build cost, so the pipeline runs with a deliberately coarse
	// two-partition plan.
	runWith := func(cands []detect.Kind) (*core.Report, error) {
		return core.Run(context.Background(), input, core.Config{
			Params:  params,
			Planner: plan.DMT,
			PlanOpts: plan.Options{
				NumReducers:   2,
				NumPartitions: 2,
				Candidates:    cands,
			},
			SampleRate:  1,
			Seed:        cfg.seed,
			Parallelism: cfg.parallelism,
		})
	}
	cands := []detect.Kind{detect.NestedLoop, detect.KDTree, detect.PGraph}
	fmt.Fprintf(os.Stderr, "dodbench: highdim DMT pipeline (candidates %v)\n", cands)
	dmtRep, err := runWith(cands)
	if err != nil {
		return sec, err
	}
	nlRep, err := runWith([]detect.Kind{detect.NestedLoop})
	if err != nil {
		return sec, err
	}
	kdRep, err := runWith([]detect.Kind{detect.KDTree})
	if err != nil {
		return sec, err
	}

	pl := highDimPlanner{
		PicksByAlgo:     map[string]int{},
		DistComps:       dmtRep.DistComps,
		Outliers:        len(dmtRep.Outliers),
		NestedLoopComps: nlRep.DistComps,
		KDTreeComps:     kdRep.DistComps,
	}
	for _, k := range cands {
		pl.Candidates = append(pl.Candidates, k.String())
	}
	for _, p := range dmtRep.Plan.Partitions {
		pl.PicksByAlgo[p.Algo.String()]++
	}
	best := pl.NestedLoopComps
	if pl.KDTreeComps < best {
		best = pl.KDTreeComps
	}
	pl.Wins = pl.DistComps < best
	sec.Planner = pl
	return sec, nil
}

// runGraphCheck is the CI exactness gate for the proximity-graph tactic:
// on fixed seeds it compares Prox-Graph against BruteForce on a low- and a
// high-dimensional workload, sequential and tiled, and fails on the first
// byte that differs. The certification fallback makes the graph walk
// exact by construction; this gate catches any regression in that
// argument at the kernel boundary.
func runGraphCheck(n int) error {
	seeds := []int64{1, 7, 42, 1000003}
	workers := runtime.GOMAXPROCS(0)
	type workload struct {
		name   string
		pts    []geom.Point
		params detect.Params
	}
	workloads := []workload{
		{"segment2d", synth.Segment(synth.Massachusetts, n, 3), detect.Params{R: 5, K: 4}},
	}
	hd, _ := synth.HighDimPlanted(n/2, 32, 4, 0.02, 11)
	workloads = append(workloads, workload{"planted32d", hd, detect.Params{R: 4, K: 4}})

	for _, w := range workloads {
		set := geom.PointSetOf(w.pts)
		for _, seed := range seeds {
			brute := detect.DetectSet(detect.New(detect.BruteForce, seed), set, set.Len(), w.params)
			seq := detect.DetectSet(detect.New(detect.PGraph, seed), set, set.Len(), w.params)
			if len(seq.OutlierIDs) != len(brute.OutlierIDs) {
				return fmt.Errorf("graphcheck %s seed %d: %d outliers, brute %d",
					w.name, seed, len(seq.OutlierIDs), len(brute.OutlierIDs))
			}
			for i := range brute.OutlierIDs {
				if seq.OutlierIDs[i] != brute.OutlierIDs[i] {
					return fmt.Errorf("graphcheck %s seed %d: outlier %d differs: graph %d, brute %d",
						w.name, seed, i, seq.OutlierIDs[i], brute.OutlierIDs[i])
				}
			}
			par := detect.DetectSetParallel(detect.New(detect.PGraph, seed), set, set.Len(), w.params, workers)
			if par.Stats != seq.Stats || len(par.OutlierIDs) != len(seq.OutlierIDs) {
				return fmt.Errorf("graphcheck %s seed %d: parallel diverged (seq %+v, par %+v)",
					w.name, seed, seq.Stats, par.Stats)
			}
			for i := range seq.OutlierIDs {
				if par.OutlierIDs[i] != seq.OutlierIDs[i] {
					return fmt.Errorf("graphcheck %s seed %d: parallel outlier %d differs", w.name, seed, i)
				}
			}
			fmt.Printf("dodbench: graphcheck %s seed=%d ok (%d outliers, graph %d comps vs brute %d)\n",
				w.name, seed, len(seq.OutlierIDs), seq.Stats.DistComps, brute.Stats.DistComps)
		}
	}
	return nil
}

// measurePipeline runs one canonical distributed detection (DMT planner,
// Cell-Based partitions) and folds its trace into per-stage span totals.
func measurePipeline(cfg benchRunConfig) (pipelineRecord, error) {
	pts := synth.Segment(synth.Massachusetts, cfg.points, 3)
	input, err := core.InputFromPoints(pts, 8192)
	if err != nil {
		return pipelineRecord{}, err
	}
	start := time.Now()
	rep, err := core.Run(context.Background(), input, core.Config{
		Params:  jsonParams,
		Planner: plan.DMT,
		PlanOpts: plan.Options{
			NumReducers: cfg.reducers,
			Detector:    detect.CellBased,
		},
		SampleRate:  1,
		Seed:        cfg.seed,
		Parallelism: cfg.parallelism,
	})
	if err != nil {
		return pipelineRecord{}, err
	}
	wall := time.Since(start)

	rec := pipelineRecord{
		Planner:       plan.DMT.Name(),
		Detector:      detect.CellBased.String(),
		Points:        len(pts),
		Reducers:      cfg.reducers,
		Outliers:      len(rep.Outliers),
		DistComps:     rep.DistComps,
		PointsIndexed: rep.PointsIndexed,
		ShuffleBytes:  rep.ShuffleBytes,
		WallMs:        float64(wall) / float64(time.Millisecond),
	}
	rec.Spans = aggregateSpans(rep.Trace)
	return rec, nil
}

// measureDist runs the canonical pipeline twice — in-process and on a
// loopback cluster with distWorkers workers — and records the comparison.
func measureDist(cfg benchRunConfig) (distRecord, error) {
	const distWorkers = 4
	pts := synth.Segment(synth.Massachusetts, cfg.points, 3)
	input, err := core.InputFromPoints(pts, 8192)
	if err != nil {
		return distRecord{}, err
	}
	runCfg := core.Config{
		Params:  jsonParams,
		Planner: plan.DMT,
		PlanOpts: plan.Options{
			NumReducers: cfg.reducers,
			Detector:    detect.CellBased,
		},
		SampleRate:  1,
		Seed:        cfg.seed,
		Parallelism: cfg.parallelism,
	}

	start := time.Now()
	localRep, err := core.Run(context.Background(), input, runCfg)
	if err != nil {
		return distRecord{}, err
	}
	localWall := time.Since(start)

	coord, err := dist.NewCoordinator(dist.Config{})
	if err != nil {
		return distRecord{}, err
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < distWorkers; i++ {
		w, err := dist.NewWorker(dist.WorkerConfig{
			Coordinator: coord.URL(),
			Name:        fmt.Sprintf("bench-%d", i),
		})
		if err != nil {
			return distRecord{}, err
		}
		go w.Run(ctx) //nolint:errcheck
	}
	if err := coord.WaitForWorkers(ctx, distWorkers); err != nil {
		return distRecord{}, err
	}

	runCfg.ExecutorFor = core.ClusterExecutorFor(coord)
	start = time.Now()
	clusterRep, err := core.Run(context.Background(), input, runCfg)
	if err != nil {
		return distRecord{}, err
	}
	clusterWall := time.Since(start)

	match := len(localRep.Outliers) == len(clusterRep.Outliers)
	for i := 0; match && i < len(localRep.Outliers); i++ {
		match = localRep.Outliers[i] == clusterRep.Outliers[i]
	}
	st := coord.Stats()
	return distRecord{
		Workers:        distWorkers,
		Points:         len(pts),
		Outliers:       len(clusterRep.Outliers),
		LocalWallMs:    float64(localWall) / float64(time.Millisecond),
		ClusterWallMs:  float64(clusterWall) / float64(time.Millisecond),
		ShuffleBytes:   clusterRep.ShuffleBytes,
		BytesShipped:   st.BytesShipped,
		BytesCollected: st.BytesCollected,
		Dispatches:     st.Dispatches,
		Match:          match,
	}, nil
}

// aggregateSpans sums span durations by name, in first-appearance order.
func aggregateSpans(tr *obs.Trace) []spanRecord {
	var out []spanRecord
	byName := map[string]int{}
	for _, sp := range tr.Spans() {
		i, ok := byName[sp.Name]
		if !ok {
			i = len(out)
			byName[sp.Name] = i
			out = append(out, spanRecord{Name: sp.Name})
		}
		out[i].Count++
		out[i].TotalMs += float64(sp.Duration) / float64(time.Millisecond)
	}
	return out
}

type benchRunConfig struct {
	points      int
	reducers    int
	seed        int64
	parallelism int
}

// runJSONBench measures every kernel plus the canonical pipeline and writes
// the document to path ("-" for stdout).
func runJSONBench(cfg benchRunConfig, path string) error {
	doc := benchFile{
		Schema:    "dodbench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Params:    benchParams{R: jsonParams.R, K: jsonParams.K},
	}
	seqNs := map[string]int64{}
	for _, c := range jsonBenchCases() {
		fmt.Fprintf(os.Stderr, "dodbench: measuring %s\n", c.name)
		rec := measureKernel(c)
		seqNs[c.name] = rec.NsPerOp
		doc.Kernels = append(doc.Kernels, rec)
	}
	workers := runtime.GOMAXPROCS(0)
	for _, c := range parallelBenchCases() {
		fmt.Fprintf(os.Stderr, "dodbench: measuring %s (parallel, %d workers)\n", c.name, workers)
		doc.Parallel = append(doc.Parallel, measureKernelParallel(c, workers, seqNs[c.name]))
	}
	fmt.Fprintf(os.Stderr, "dodbench: measuring pipeline (%d points, %d reducers)\n", cfg.points, cfg.reducers)
	pipe, err := measurePipeline(cfg)
	if err != nil {
		return err
	}
	doc.Pipeline = pipe
	fmt.Fprintf(os.Stderr, "dodbench: measuring loopback cluster (%d points)\n", cfg.points)
	distRec, err := measureDist(cfg)
	if err != nil {
		return err
	}
	doc.Dist = distRec
	fmt.Fprintf(os.Stderr, "dodbench: measuring serving tier (%d points)\n", cfg.points)
	serveSec, err := measureServe(cfg)
	if err != nil {
		return err
	}
	doc.Serve = serveSec
	fmt.Fprintf(os.Stderr, "dodbench: measuring high-dimensional tactics\n")
	hd, err := measureHighDim(cfg)
	if err != nil {
		return err
	}
	doc.HighDim = hd

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
