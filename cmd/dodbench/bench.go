package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/dist"
	"dod/internal/geom"
	"dod/internal/obs"
	"dod/internal/plan"
	"dod/internal/synth"
)

// The -json mode measures the detection kernels and one end-to-end pipeline
// run, emitting a machine-readable record per benchmark. Committed
// BENCH_<date>.json files form the repository's performance trajectory:
// re-running `dodbench -json` on the same hardware class and diffing
// against the last committed baseline shows whether a change moved the hot
// paths.

// benchFile is the top-level JSON document.
type benchFile struct {
	Schema    string         `json:"schema"` // "dodbench/v1"
	Generated string         `json:"generated"`
	GoVersion string         `json:"go"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	MaxProcs  int            `json:"gomaxprocs"`
	Params    benchParams    `json:"params"`
	Kernels   []kernelRecord `json:"kernels"`
	// Parallel re-measures the tiled kernels at GOMAXPROCS workers via
	// detect.DetectSetParallel; speedup_vs_seq compares against the
	// sequential record of the same case in Kernels. On a single-core
	// machine the section still appears (speedup ≈ 1), so the schema is
	// stable across hardware.
	Parallel []parallelRecord `json:"parallel"`
	Pipeline pipelineRecord   `json:"pipeline"`
	Dist     distRecord       `json:"dist"`
	// Serve measures the NDJSON serving tier over loopback HTTP — the fast
	// wire path against the legacy one on the same build, single-process and
	// sharded — so the committed baseline documents the wire-path speedup
	// and the support-RPC coalescing factor.
	Serve serveSection `json:"serve"`
}

type benchParams struct {
	R float64 `json:"r"`
	K int     `json:"k"`
}

// kernelRecord is one detector benchmark measured via testing.Benchmark.
type kernelRecord struct {
	Name         string  `json:"name"`
	Detector     string  `json:"detector"`
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	Iters        int     `json:"iters"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	DistComps    int64   `json:"dist_comps"` // per detection pass
	Outliers     int     `json:"outliers"`   // result size (sanity anchor)
	PointsPerSec float64 `json:"points_per_sec"`
}

// parallelRecord is a kernelRecord measured through the tiled parallel
// entry point, plus the worker count and the speedup over the sequential
// measurement of the same case.
type parallelRecord struct {
	kernelRecord
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup_vs_seq"`
}

// pipelineRecord is one traced end-to-end core.Run.
type pipelineRecord struct {
	Planner       string       `json:"planner"`
	Detector      string       `json:"detector"`
	Points        int          `json:"points"`
	Reducers      int          `json:"reducers"`
	Outliers      int          `json:"outliers"`
	DistComps     int64        `json:"dist_comps"`
	PointsIndexed int64        `json:"points_indexed"`
	ShuffleBytes  int64        `json:"shuffle_bytes"`
	WallMs        float64      `json:"wall_ms"`
	Spans         []spanRecord `json:"spans"`
}

// spanRecord flattens an obs.Trace span. Per-partition detect spans are
// aggregated by the caller into one record per stage name, keeping the
// artifact size independent of the partition count.
type spanRecord struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
}

// distRecord compares the same detection run on the in-process engine and
// on a loopback cluster (1 coordinator + workers over real HTTP on this
// machine). cluster_wall_ms includes serialization and loopback transport,
// so the gap to local_wall_ms is the runtime's overhead floor;
// bytes_shipped/bytes_collected are actual wire bytes.
type distRecord struct {
	Workers        int     `json:"workers"`
	Points         int     `json:"points"`
	Outliers       int     `json:"outliers"`
	LocalWallMs    float64 `json:"local_wall_ms"`
	ClusterWallMs  float64 `json:"cluster_wall_ms"`
	ShuffleBytes   int64   `json:"shuffle_bytes"`
	BytesShipped   int64   `json:"bytes_shipped"`
	BytesCollected int64   `json:"bytes_collected"`
	Dispatches     int64   `json:"dispatches"`
	Match          bool    `json:"match"` // cluster outliers byte-identical to local
}

// benchCases mirrors internal/detect/bench_test.go so the committed JSON
// trajectory and `go test -bench` measure the same kernels.
type benchCase struct {
	name string
	kind detect.Kind
	pts  func() []geom.Point
	n    int
	dim  int
}

func jsonBenchCases() []benchCase {
	ma := func(n int) func() []geom.Point {
		return func() []geom.Point { return synth.Segment(synth.Massachusetts, n, 3) }
	}
	cloud3 := func(n int) func() []geom.Point {
		return func() []geom.Point { return synth.GaussianCloud(n, 3, 17) }
	}
	return []benchCase{
		{"NestedLoop2D/n=2000", detect.NestedLoop, ma(2000), 2000, 2},
		{"NestedLoop2D/n=8000", detect.NestedLoop, ma(8000), 8000, 2},
		{"CellBased2D/n=2000", detect.CellBased, ma(2000), 2000, 2},
		{"CellBased2D/n=8000", detect.CellBased, ma(8000), 8000, 2},
		{"CellBasedL2_2D/n=8000", detect.CellBasedL2, ma(8000), 8000, 2},
		{"KDTree2D/n=8000", detect.KDTree, ma(8000), 8000, 2},
		{"Pivot2D/n=8000", detect.Pivot, ma(8000), 8000, 2},
		{"CellBased3D/n=8000", detect.CellBased, cloud3(8000), 8000, 3},
	}
}

// jsonParams matches the kernel benchmarks in internal/detect: r=5, k=4 on
// the segment analogs (the paper's Sec. VI operating point).
var jsonParams = detect.Params{R: 5, K: 4}

func measureKernel(c benchCase) kernelRecord {
	pts := c.pts()
	set := geom.PointSetOf(pts)
	d := detect.New(c.kind, 7)
	// One un-timed pass pins the deterministic work counters and result.
	ref := detect.DetectSet(d, set, set.Len(), jsonParams)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detect.DetectSet(d, set, set.Len(), jsonParams)
		}
	})
	nsPerOp := res.NsPerOp()
	rec := kernelRecord{
		Name:        c.name,
		Detector:    c.kind.String(),
		N:           c.n,
		Dim:         c.dim,
		Iters:       res.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		DistComps:   ref.Stats.DistComps,
		Outliers:    len(ref.OutlierIDs),
	}
	if nsPerOp > 0 {
		rec.PointsPerSec = float64(c.n) * 1e9 / float64(nsPerOp)
	}
	return rec
}

// parallelBenchCases is the subset of jsonBenchCases with tiled kernels —
// the ones DetectSetParallel actually spreads across workers.
func parallelBenchCases() []benchCase {
	var out []benchCase
	for _, c := range jsonBenchCases() {
		switch c.kind {
		case detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.CellBasedL2:
			out = append(out, c)
		}
	}
	return out
}

// measureKernelParallel benchmarks one tiled kernel at the given worker
// count. seqNs is the sequential ns/op of the same case, for the speedup
// ratio; the deterministic counters (DistComps, Outliers) are asserted
// identical to the sequential pass, so a drifting tile merge shows up in
// the committed artifact as well as in tests.
func measureKernelParallel(c benchCase, workers int, seqNs int64) parallelRecord {
	pts := c.pts()
	set := geom.PointSetOf(pts)
	d := detect.New(c.kind, 7)
	seqRef := detect.DetectSet(d, set, set.Len(), jsonParams)
	ref := detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
	if ref.Stats.DistComps != seqRef.Stats.DistComps || len(ref.OutlierIDs) != len(seqRef.OutlierIDs) {
		// The parallel kernels are contractually bit-identical; refuse to
		// record a baseline that violates it.
		panic(fmt.Sprintf("%s: parallel result diverged from sequential", c.name))
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
		}
	})
	nsPerOp := res.NsPerOp()
	rec := parallelRecord{
		kernelRecord: kernelRecord{
			Name:        c.name,
			Detector:    c.kind.String(),
			N:           c.n,
			Dim:         c.dim,
			Iters:       res.N,
			NsPerOp:     nsPerOp,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			DistComps:   ref.Stats.DistComps,
			Outliers:    len(ref.OutlierIDs),
		},
		Workers: workers,
	}
	if nsPerOp > 0 {
		rec.PointsPerSec = float64(c.n) * 1e9 / float64(nsPerOp)
		rec.Speedup = float64(seqNs) / float64(nsPerOp)
	}
	return rec
}

// runParCheck is the CI speedup gate: it benchmarks the Cell-Based kernel
// sequentially and tiled at GOMAXPROCS workers, verifies bit-identity, and
// fails if the parallel/sequential throughput ratio falls below min. CI
// runs it at GOMAXPROCS=1 (min ~0.9: tiling must never cost much when
// there is nothing to parallelize) and GOMAXPROCS=4 (min ~2: the tiles
// must actually scale).
func runParCheck(n int, min float64) error {
	workers := runtime.GOMAXPROCS(0)
	pts := synth.Segment(synth.Massachusetts, n, 3)
	set := geom.PointSetOf(pts)
	d := detect.New(detect.CellBased, 7)

	seqRef := detect.DetectSet(d, set, set.Len(), jsonParams)
	parRef := detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
	if len(seqRef.OutlierIDs) != len(parRef.OutlierIDs) || seqRef.Stats != parRef.Stats {
		return fmt.Errorf("parcheck: parallel result diverged from sequential (seq %d outliers %+v, par %d outliers %+v)",
			len(seqRef.OutlierIDs), seqRef.Stats, len(parRef.OutlierIDs), parRef.Stats)
	}
	for i := range seqRef.OutlierIDs {
		if seqRef.OutlierIDs[i] != parRef.OutlierIDs[i] {
			return fmt.Errorf("parcheck: outlier %d differs: seq %d, par %d", i, seqRef.OutlierIDs[i], parRef.OutlierIDs[i])
		}
	}

	seq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detect.DetectSet(d, set, set.Len(), jsonParams)
		}
	})
	par := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			detect.DetectSetParallel(d, set, set.Len(), jsonParams, workers)
		}
	})
	ratio := float64(seq.NsPerOp()) / float64(par.NsPerOp())
	fmt.Printf("dodbench: parcheck GOMAXPROCS=%d n=%d seq=%v/op par=%v/op ratio=%.2f min=%.2f\n",
		workers, n, time.Duration(seq.NsPerOp()), time.Duration(par.NsPerOp()), ratio, min)
	if ratio < min {
		return fmt.Errorf("parcheck: parallel/sequential ratio %.2f below minimum %.2f at GOMAXPROCS=%d", ratio, min, workers)
	}
	return nil
}

// measurePipeline runs one canonical distributed detection (DMT planner,
// Cell-Based partitions) and folds its trace into per-stage span totals.
func measurePipeline(cfg benchRunConfig) (pipelineRecord, error) {
	pts := synth.Segment(synth.Massachusetts, cfg.points, 3)
	input, err := core.InputFromPoints(pts, 8192)
	if err != nil {
		return pipelineRecord{}, err
	}
	start := time.Now()
	rep, err := core.Run(context.Background(), input, core.Config{
		Params:  jsonParams,
		Planner: plan.DMT,
		PlanOpts: plan.Options{
			NumReducers: cfg.reducers,
			Detector:    detect.CellBased,
		},
		SampleRate:  1,
		Seed:        cfg.seed,
		Parallelism: cfg.parallelism,
	})
	if err != nil {
		return pipelineRecord{}, err
	}
	wall := time.Since(start)

	rec := pipelineRecord{
		Planner:       plan.DMT.Name(),
		Detector:      detect.CellBased.String(),
		Points:        len(pts),
		Reducers:      cfg.reducers,
		Outliers:      len(rep.Outliers),
		DistComps:     rep.DistComps,
		PointsIndexed: rep.PointsIndexed,
		ShuffleBytes:  rep.ShuffleBytes,
		WallMs:        float64(wall) / float64(time.Millisecond),
	}
	rec.Spans = aggregateSpans(rep.Trace)
	return rec, nil
}

// measureDist runs the canonical pipeline twice — in-process and on a
// loopback cluster with distWorkers workers — and records the comparison.
func measureDist(cfg benchRunConfig) (distRecord, error) {
	const distWorkers = 4
	pts := synth.Segment(synth.Massachusetts, cfg.points, 3)
	input, err := core.InputFromPoints(pts, 8192)
	if err != nil {
		return distRecord{}, err
	}
	runCfg := core.Config{
		Params:  jsonParams,
		Planner: plan.DMT,
		PlanOpts: plan.Options{
			NumReducers: cfg.reducers,
			Detector:    detect.CellBased,
		},
		SampleRate:  1,
		Seed:        cfg.seed,
		Parallelism: cfg.parallelism,
	}

	start := time.Now()
	localRep, err := core.Run(context.Background(), input, runCfg)
	if err != nil {
		return distRecord{}, err
	}
	localWall := time.Since(start)

	coord, err := dist.NewCoordinator(dist.Config{})
	if err != nil {
		return distRecord{}, err
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < distWorkers; i++ {
		w, err := dist.NewWorker(dist.WorkerConfig{
			Coordinator: coord.URL(),
			Name:        fmt.Sprintf("bench-%d", i),
		})
		if err != nil {
			return distRecord{}, err
		}
		go w.Run(ctx) //nolint:errcheck
	}
	if err := coord.WaitForWorkers(ctx, distWorkers); err != nil {
		return distRecord{}, err
	}

	runCfg.ExecutorFor = core.ClusterExecutorFor(coord)
	start = time.Now()
	clusterRep, err := core.Run(context.Background(), input, runCfg)
	if err != nil {
		return distRecord{}, err
	}
	clusterWall := time.Since(start)

	match := len(localRep.Outliers) == len(clusterRep.Outliers)
	for i := 0; match && i < len(localRep.Outliers); i++ {
		match = localRep.Outliers[i] == clusterRep.Outliers[i]
	}
	st := coord.Stats()
	return distRecord{
		Workers:        distWorkers,
		Points:         len(pts),
		Outliers:       len(clusterRep.Outliers),
		LocalWallMs:    float64(localWall) / float64(time.Millisecond),
		ClusterWallMs:  float64(clusterWall) / float64(time.Millisecond),
		ShuffleBytes:   clusterRep.ShuffleBytes,
		BytesShipped:   st.BytesShipped,
		BytesCollected: st.BytesCollected,
		Dispatches:     st.Dispatches,
		Match:          match,
	}, nil
}

// aggregateSpans sums span durations by name, in first-appearance order.
func aggregateSpans(tr *obs.Trace) []spanRecord {
	var out []spanRecord
	byName := map[string]int{}
	for _, sp := range tr.Spans() {
		i, ok := byName[sp.Name]
		if !ok {
			i = len(out)
			byName[sp.Name] = i
			out = append(out, spanRecord{Name: sp.Name})
		}
		out[i].Count++
		out[i].TotalMs += float64(sp.Duration) / float64(time.Millisecond)
	}
	return out
}

type benchRunConfig struct {
	points      int
	reducers    int
	seed        int64
	parallelism int
}

// runJSONBench measures every kernel plus the canonical pipeline and writes
// the document to path ("-" for stdout).
func runJSONBench(cfg benchRunConfig, path string) error {
	doc := benchFile{
		Schema:    "dodbench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Params:    benchParams{R: jsonParams.R, K: jsonParams.K},
	}
	seqNs := map[string]int64{}
	for _, c := range jsonBenchCases() {
		fmt.Fprintf(os.Stderr, "dodbench: measuring %s\n", c.name)
		rec := measureKernel(c)
		seqNs[c.name] = rec.NsPerOp
		doc.Kernels = append(doc.Kernels, rec)
	}
	workers := runtime.GOMAXPROCS(0)
	for _, c := range parallelBenchCases() {
		fmt.Fprintf(os.Stderr, "dodbench: measuring %s (parallel, %d workers)\n", c.name, workers)
		doc.Parallel = append(doc.Parallel, measureKernelParallel(c, workers, seqNs[c.name]))
	}
	fmt.Fprintf(os.Stderr, "dodbench: measuring pipeline (%d points, %d reducers)\n", cfg.points, cfg.reducers)
	pipe, err := measurePipeline(cfg)
	if err != nil {
		return err
	}
	doc.Pipeline = pipe
	fmt.Fprintf(os.Stderr, "dodbench: measuring loopback cluster (%d points)\n", cfg.points)
	distRec, err := measureDist(cfg)
	if err != nil {
		return err
	}
	doc.Dist = distRec
	fmt.Fprintf(os.Stderr, "dodbench: measuring serving tier (%d points)\n", cfg.points)
	serveSec, err := measureServe(cfg)
	if err != nil {
		return err
	}
	doc.Serve = serveSec

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
