// Command dodbench regenerates the paper's evaluation figures (Sec. VI) on
// the synthetic dataset analogs and prints each as a text table.
//
// Usage:
//
//	dodbench                       # run every figure at default scale
//	dodbench -fig 9a -fig 10b      # run selected figures
//	dodbench -segment-n 60000 -base-n 8000 -reducers 8 -seed 1
//	dodbench -json BENCH.json      # machine-readable kernel + pipeline benchmarks
//	dodbench -json - -cpuprofile cpu.pprof
//	dodbench -parcheck -parcheck-min 2  # gate: parallel kernel >= 2x sequential
//	dodbench -servecheck -servecheck-min 2  # gate: fast wire path >= 2x legacy
//
// Larger -segment-n / -base-n values reduce the laptop-scale artifacts
// discussed in EXPERIMENTS.md at the price of longer runs.
//
// -json switches from figure tables to the benchmark suite: each detection
// kernel is measured with testing.Benchmark (ns/op, allocs/op, distance
// computations) and one traced end-to-end run contributes per-stage span
// totals; the document is the format committed as BENCH_<date>.json.
// -cpuprofile and -memprofile write pprof profiles of whichever mode ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"dod"
	"dod/internal/detect"
	"dod/internal/experiments"
)

type figList []string

func (f *figList) String() string     { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error { *f = append(*f, v); return nil }

// detectorList collects repeatable -candidate flags, each parsed through
// the public name registry.
type detectorList []detect.Kind

func (d *detectorList) String() string {
	names := make([]string, len(*d))
	for i, k := range *d {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

func (d *detectorList) Set(v string) error {
	k, err := dod.ParseDetector(v)
	if err != nil {
		return err
	}
	*d = append(*d, k)
	return nil
}

func main() {
	var figs figList
	var candidates detectorList
	var (
		segmentN    = flag.Int("segment-n", 20000, "points per dataset segment (Figs. 7, 9a)")
		baseN       = flag.Int("base-n", 4000, "per-segment points of the hierarchical levels (Figs. 8, 9b)")
		sweepN      = flag.Int("sweep-n", 10000, "points of the density-sweep sets (Figs. 4, 5)")
		reducers    = flag.Int("reducers", 8, "reduce tasks")
		partitions  = flag.Int("partitions", 0, "target partitions for grid/bisection planners (default 4x reducers)")
		seed        = flag.Int64("seed", 1, "random seed")
		parallelism = flag.Int("parallelism", 0, "local goroutines (default GOMAXPROCS)")
	)
	csvOut := flag.Bool("csv", false, "emit machine-readable CSV (figure,series,x,y) instead of tables")
	jsonOut := flag.String("json", "", "run the benchmark suite instead of figures and write JSON records to this file (- for stdout)")
	parCheck := flag.Bool("parcheck", false, "benchmark the parallel Cell-Based kernel against the sequential one at GOMAXPROCS workers, verify bit-identity, and exit nonzero if the speedup ratio is below -parcheck-min")
	parCheckMin := flag.Float64("parcheck-min", 0, "minimum parallel/sequential throughput ratio for -parcheck")
	parCheckN := flag.Int("parcheck-n", 8000, "dataset size for -parcheck")
	serveCheck := flag.Bool("servecheck", false, "benchmark the fast NDJSON serving wire path against the legacy one over loopback HTTP, verify the two answer byte-identical streams, and exit nonzero below -servecheck-min or above -servecheck-allocs")
	serveCheckMin := flag.Float64("servecheck-min", 0, "minimum fast/legacy ingest throughput ratio for -servecheck")
	serveCheckAllocs := flag.Float64("servecheck-allocs", 0, "maximum whole-process allocations per ingested line for -servecheck (0 disables)")
	serveCheckN := flag.Int("servecheck-n", 6000, "dataset size for -servecheck")
	graphCheck := flag.Bool("graphcheck", false, "verify the Prox-Graph tactic answers byte-identically to BruteForce on fixed seeds (low- and high-dimensional, sequential and tiled) and exit nonzero on the first divergence")
	graphCheckN := flag.Int("graphcheck-n", 2500, "dataset size for -graphcheck")
	approx := flag.Bool("approx", false, "allow approximate detector candidates (e.g. Sens-Sample) in figure runs")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Var(&figs, "fig", "figure to run (4, 5, 7a, 7b, 8a, 8b, 9a, 9b, 10a, 10b, g=generality); repeatable; default all")
	flag.Var(&candidates, "candidate", "detector candidate for DMT's per-partition choice (NestedLoop, CellBased, ...); repeatable; default NestedLoop+CellBased")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dodbench:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fail(err)
			}
		}()
	}

	if *parCheck {
		if err := runParCheck(*parCheckN, *parCheckMin); err != nil {
			fail(err)
		}
		return
	}

	if *serveCheck {
		if err := runServeCheck(*serveCheckN, *serveCheckMin, *serveCheckAllocs); err != nil {
			fail(err)
		}
		return
	}

	if *graphCheck {
		if err := runGraphCheck(*graphCheckN); err != nil {
			fail(err)
		}
		return
	}

	if *jsonOut != "" {
		if err := runJSONBench(benchRunConfig{
			points:      *segmentN,
			reducers:    *reducers,
			seed:        *seed,
			parallelism: *parallelism,
		}, *jsonOut); err != nil {
			fail(err)
		}
		return
	}

	cfg := experiments.Config{
		SegmentN:    *segmentN,
		BaseN:       *baseN,
		SweepN:      *sweepN,
		Reducers:    *reducers,
		Partitions:  *partitions,
		Seed:        *seed,
		Parallelism: *parallelism,
		Candidates:  candidates,
		AllowApprox: *approx,
	}
	if err := run(cfg, figs, *csvOut); err != nil {
		fail(err)
	}
}

var runners = map[string]func(experiments.Config) (*experiments.Figure, error){
	"4":   experiments.Fig4,
	"5":   experiments.Fig5,
	"7a":  experiments.Fig7a,
	"7b":  experiments.Fig7b,
	"8a":  experiments.Fig8a,
	"8b":  experiments.Fig8b,
	"9a":  experiments.Fig9a,
	"9b":  experiments.Fig9b,
	"10a": experiments.Fig10a,
	"10b": experiments.Fig10b,
	"g":   experiments.Generality,
}

var order = []string{"4", "5", "7a", "7b", "8a", "8b", "9a", "9b", "10a", "10b", "g"}

func run(cfg experiments.Config, figs figList, csvOut bool) error {
	selected := []string(figs)
	if len(selected) == 0 {
		selected = order
	}
	if csvOut {
		fmt.Println("figure,series,x,y")
	}
	for _, id := range selected {
		runner, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (valid: %s)", id, strings.Join(order, ", "))
		}
		fig, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		if csvOut {
			writeCSV(fig)
		} else {
			fmt.Println(fig.String())
		}
	}
	return nil
}

// writeCSV emits one row per sample. Series labels and categories never
// contain commas, so no quoting is needed.
func writeCSV(fig *experiments.Figure) {
	for _, s := range fig.Series {
		for _, p := range s.Points {
			fmt.Printf("%s,%s,%s,%g\n", fig.ID, s.Label, p.X, p.Y)
		}
	}
}
