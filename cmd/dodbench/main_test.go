package main

import (
	"testing"

	"dod/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{SegmentN: 1500, BaseN: 600, SweepN: 2000, Reducers: 4, Seed: 1}
}

func TestRunSelectedFigure(t *testing.T) {
	if err := run(tinyConfig(), figList{"4"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(tinyConfig(), figList{"99"}, true); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunnerTableCoversOrder(t *testing.T) {
	for _, id := range order {
		if _, ok := runners[id]; !ok {
			t.Errorf("order lists %q but runners lacks it", id)
		}
	}
	if len(order) != len(runners) {
		t.Errorf("order has %d entries, runners %d", len(order), len(runners))
	}
}

// TestMeasureDist runs the loopback-cluster comparison at test scale; the
// record must report byte-identical results and non-trivial wire traffic.
func TestMeasureDist(t *testing.T) {
	rec, err := measureDist(benchRunConfig{points: 2000, reducers: 4, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Match {
		t.Error("cluster run diverged from local run")
	}
	if rec.Workers != 4 || rec.Points != 2000 {
		t.Errorf("record shape: %+v", rec)
	}
	if rec.BytesShipped == 0 || rec.BytesCollected == 0 || rec.Dispatches == 0 {
		t.Errorf("wire counters empty: %+v", rec)
	}
	if rec.LocalWallMs <= 0 || rec.ClusterWallMs <= 0 {
		t.Errorf("wall times not recorded: %+v", rec)
	}
}

// TestMeasureKernelParallel checks the parallel bench record at test
// scale: the deterministic counters must match the sequential case, and
// the speedup field must be derived from the supplied sequential ns/op.
func TestMeasureKernelParallel(t *testing.T) {
	var c benchCase
	for _, cand := range parallelBenchCases() {
		if cand.n == 2000 {
			c = cand
			break
		}
	}
	if c.name == "" {
		t.Fatal("no small parallel bench case found")
	}
	seq := measureKernel(c)
	rec := measureKernelParallel(c, 2, seq.NsPerOp)
	if rec.Workers != 2 {
		t.Errorf("workers = %d, want 2", rec.Workers)
	}
	if rec.DistComps != seq.DistComps || rec.Outliers != seq.Outliers {
		t.Errorf("deterministic counters diverge: parallel %+v, sequential %+v", rec, seq)
	}
	if rec.Speedup <= 0 {
		t.Errorf("speedup not recorded: %+v", rec)
	}
}

// TestRunParCheck runs the CI gate at test scale with no minimum: it must
// verify bit-identity and report a ratio without failing.
func TestRunParCheck(t *testing.T) {
	if err := runParCheck(1500, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFigListFlag(t *testing.T) {
	var f figList
	if err := f.Set("4"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("9a"); err != nil {
		t.Fatal(err)
	}
	if f.String() != "4,9a" {
		t.Errorf("String() = %q", f.String())
	}
}

// TestRunGraphCheck runs the exactness gate at test scale: every fixed
// seed must answer byte-identically to BruteForce on both workloads.
func TestRunGraphCheck(t *testing.T) {
	if err := runGraphCheck(800); err != nil {
		t.Fatal(err)
	}
}

// TestMeasureHighDim runs the 32-dimensional tactic comparison and checks
// the committed-record invariants: every exact tactic matches BruteForce,
// the planner routes at least one partition to the graph tactic, and the
// routed plan beats the single-tactic alternatives on distance
// computations.
func TestMeasureHighDim(t *testing.T) {
	if testing.Short() {
		t.Skip("high-dimensional workload is seconds-scale")
	}
	sec, err := measureHighDim(benchRunConfig{reducers: 4, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Dim < 32 {
		t.Errorf("dim = %d, want >= 32", sec.Dim)
	}
	var graphComps, bruteComps int64 = -1, -1
	for _, tac := range sec.Tactics {
		if !tac.MatchBrute {
			t.Errorf("%s diverged from BruteForce", tac.Detector)
		}
		switch tac.Detector {
		case "Prox-Graph":
			graphComps = tac.DistComps
		case "BruteForce":
			bruteComps = tac.DistComps
		}
	}
	if graphComps < 0 || bruteComps < 0 {
		t.Fatalf("missing tactic records: %+v", sec.Tactics)
	}
	if graphComps >= bruteComps {
		t.Errorf("graph tactic did not beat brute force: %d vs %d", graphComps, bruteComps)
	}
	if sec.Planner.PicksByAlgo["Prox-Graph"] == 0 {
		t.Errorf("planner never picked the graph tactic: %+v", sec.Planner.PicksByAlgo)
	}
	if !sec.Planner.Wins {
		t.Errorf("DMT routing did not win: dmt=%d nl=%d kd=%d",
			sec.Planner.DistComps, sec.Planner.NestedLoopComps, sec.Planner.KDTreeComps)
	}
}
