package main

import (
	"testing"

	"dod/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{SegmentN: 1500, BaseN: 600, SweepN: 2000, Reducers: 4, Seed: 1}
}

func TestRunSelectedFigure(t *testing.T) {
	if err := run(tinyConfig(), figList{"4"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(tinyConfig(), figList{"99"}, true); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunnerTableCoversOrder(t *testing.T) {
	for _, id := range order {
		if _, ok := runners[id]; !ok {
			t.Errorf("order lists %q but runners lacks it", id)
		}
	}
	if len(order) != len(runners) {
		t.Errorf("order has %d entries, runners %d", len(order), len(runners))
	}
}

// TestMeasureDist runs the loopback-cluster comparison at test scale; the
// record must report byte-identical results and non-trivial wire traffic.
func TestMeasureDist(t *testing.T) {
	rec, err := measureDist(benchRunConfig{points: 2000, reducers: 4, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Match {
		t.Error("cluster run diverged from local run")
	}
	if rec.Workers != 4 || rec.Points != 2000 {
		t.Errorf("record shape: %+v", rec)
	}
	if rec.BytesShipped == 0 || rec.BytesCollected == 0 || rec.Dispatches == 0 {
		t.Errorf("wire counters empty: %+v", rec)
	}
	if rec.LocalWallMs <= 0 || rec.ClusterWallMs <= 0 {
		t.Errorf("wall times not recorded: %+v", rec)
	}
}

func TestFigListFlag(t *testing.T) {
	var f figList
	if err := f.Set("4"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("9a"); err != nil {
		t.Fatal(err)
	}
	if f.String() != "4,9a" {
		t.Errorf("String() = %q", f.String())
	}
}
