package main

import (
	"testing"

	"dod/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{SegmentN: 1500, BaseN: 600, SweepN: 2000, Reducers: 4, Seed: 1}
}

func TestRunSelectedFigure(t *testing.T) {
	if err := run(tinyConfig(), figList{"4"}, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(tinyConfig(), figList{"99"}, true); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunnerTableCoversOrder(t *testing.T) {
	for _, id := range order {
		if _, ok := runners[id]; !ok {
			t.Errorf("order lists %q but runners lacks it", id)
		}
	}
	if len(order) != len(runners) {
		t.Errorf("order has %d entries, runners %d", len(order), len(runners))
	}
}

func TestFigListFlag(t *testing.T) {
	var f figList
	if err := f.Set("4"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("9a"); err != nil {
		t.Fatal(err)
	}
	if f.String() != "4,9a" {
		t.Errorf("String() = %q", f.String())
	}
}
