// Command dodworker is a DOD cluster worker: it joins a coordinator (a
// dod.Coordinator embedded in another process, e.g. dod -engine cluster),
// long-polls it for map and reduce task payloads, executes them with the
// same columnar detection path the in-process engine uses, and streams
// results back. Start any number of them, on any machines that can reach
// the coordinator:
//
//	dodworker -join http://coordinator-host:7120 [-name worker-a] [-parallelism 4]
//
// Workers may start before their coordinator (the join retries), survive
// coordinator-visible failures of their peers (the coordinator re-executes
// lost tasks), and exit cleanly when the coordinator shuts down or on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"dod/internal/dist"

	// Register the detection job so this binary can build and execute its
	// tasks from the coordinator's wire spec.
	_ "dod/internal/core"
)

func main() {
	var (
		join        = flag.String("join", "", "coordinator base URL, e.g. http://host:7120 (required)")
		name        = flag.String("name", "", "cluster-unique worker name (default hostname-pid)")
		parallelism = flag.Int("parallelism", runtime.GOMAXPROCS(0), "concurrent task slots")
		quiet       = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()

	if err := run(*join, *name, *parallelism, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "dodworker:", err)
		os.Exit(1)
	}
}

func run(join, name string, parallelism int, quiet bool) error {
	if join == "" {
		return fmt.Errorf("-join is required (kinds this worker can execute: %s)", strings.Join(dist.RegisteredKinds(), ", "))
	}
	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if quiet {
		logf = nil
	}
	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: join,
		Name:        name,
		Parallelism: parallelism,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return w.Run(ctx)
}
