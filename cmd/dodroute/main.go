// Command dodroute runs the sharded serving tier's router: a stateless
// NDJSON front for N dodserve shards that together hold one cell-partitioned
// sliding window. Clients speak the exact single-process dodserve API
// (/v1/ingest, /v1/score) and receive byte-identical verdict streams; the
// router owns global ordering (sequence numbers, capacity/TTL eviction,
// duplicate IDs) and delegates point storage and neighbor counting to the
// shards over the codec-framed wire protocol.
//
// Usage:
//
//	dodroute -r 5 -k 4 -dim 2 -window 100000 \
//	    -shards s0=http://h0:8335,s1=http://h1:8335,s2=http://h2:8335 \
//	    [-addr :8334] [-block 16] [-vnodes 64] \
//	    [-tenant-rps 0] [-tenant-burst 0] [-tenant-quota 0]
//
// Shards are dodserve processes started with -shard -shard-name NAME. On
// startup the router pushes the ownership topology to every shard and
// begins health probing. Additional endpoints:
//
//	POST /v1/drain?shard=NAME  gracefully remove a shard: snapshot its
//	                           window slice, re-ring ownership, replay the
//	                           entries to their new owners. ?force=1
//	                           proceeds even if the shard is unreachable
//	                           (failover; its entries are lost, and the
//	                           response reports lost_entries/lost_cells).
//	POST /v1/promote?shard=NAME  fail the shard over to its warm standby
//	                           (see -standbys); refused with 409 if the
//	                           standby lags beyond -promote-lag.
//	GET  /v1/topology          the current ownership view.
//	GET  /v1/snapshot          the aggregated global window.
//	GET  /healthz /readyz /statsz /metrics as usual.
//
// -standbys attaches warm standbys (dodserve -shard -standby processes,
// started with the same shard names) to shards by name. When a primary's
// health-probe breaker opens and it has a standby, the router promotes the
// standby automatically — the same lag-bounded transaction as /v1/promote.
//
// -pprof additionally mounts the net/http/pprof profiling handlers under
// /debug/pprof/, same as dodserve's flag — profile the router and a shard
// side by side to see which tier owns a regression.
//
// With -addr :0 the actual bound address is printed on stdout as
// "dodroute: listening on HOST:PORT".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dod/internal/retry"
	"dod/internal/router"
)

func main() {
	var (
		addr          = flag.String("addr", ":8334", "listen address (use :0 for an ephemeral port; the bound address is printed on stdout)")
		r             = flag.Float64("r", 0, "distance threshold (required)")
		k             = flag.Int("k", 0, "neighbor-count threshold (required)")
		dim           = flag.Int("dim", 2, "point dimensionality")
		window        = flag.Int("window", 0, "global window capacity in points (0 = unbounded; then -ttl is required)")
		ttl           = flag.Duration("ttl", 0, "global window age horizon (0 = none; then -window is required)")
		shards        = flag.String("shards", "", "comma-separated shard list, name=url pairs or bare URLs (required)")
		block         = flag.Int("block", 0, "ownership block side in cells (0 = default)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per shard on the ring (0 = default)")
		maxBatch      = flag.Int("max-batch", 0, "max NDJSON lines per request; beyond it the whole request is rejected with 400 batch_too_large (0 = default)")
		maxBody       = flag.Int64("max-body-bytes", 0, "max request body bytes before 413 (0 = default 64 MiB)")
		tenantRPS     = flag.Float64("tenant-rps", 0, "per-tenant request rate limit (0 = unlimited)")
		tenantBurst   = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = 1)")
		tenantQuota   = flag.Int64("tenant-quota", 0, "per-tenant lifetime ingested-line quota (0 = unlimited)")
		probeInterval = flag.Duration("probe-interval", time.Second, "shard health-probe period")
		retries       = flag.Int("shard-retries", 0, "max attempts per shard call (0 = default 8)")
		standbys      = flag.String("standbys", "", "comma-separated name=url warm-standby list, attached to -shards entries by name")
		promoteLag    = flag.Uint64("promote-lag", 0, "max unreplicated ops a standby may be missing and still be promoted (0 = must be fully caught up)")
		pprofOn       = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	)
	flag.Parse()

	infos, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dodroute:", err)
		os.Exit(2)
	}
	if err := attachStandbys(infos, *standbys); err != nil {
		fmt.Fprintln(os.Stderr, "dodroute:", err)
		os.Exit(2)
	}
	cfg := router.Config{
		R: *r, K: *k, Dim: *dim,
		Capacity: *window, TTL: *ttl,
		Shards: infos, Block: *block, Vnodes: *vnodes,
		MaxBatch: *maxBatch, MaxBodyBytes: *maxBody,
		TenantRPS: *tenantRPS, TenantBurst: *tenantBurst, TenantQuota: *tenantQuota,
		ProbeInterval:   *probeInterval,
		RetryAttempts:   *retries,
		PromoteLagBound: *promoteLag,
		Retry:           retry.Policy{Base: 50 * time.Millisecond},
		EnablePprof:     *pprofOn,
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dodroute:", err)
		os.Exit(1)
	}
}

// parseShards accepts "name=url,name=url" or bare URLs (auto-named s0..sN).
func parseShards(s string) ([]router.ShardInfo, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-shards is required (name=url,... or url,...)")
	}
	var infos []router.ShardInfo
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			infos = append(infos, router.ShardInfo{Name: name, URL: url})
			continue
		}
		infos = append(infos, router.ShardInfo{Name: fmt.Sprintf("s%d", i), URL: part})
	}
	return infos, nil
}

// attachStandbys wires "name=url" warm-standby entries onto the matching
// shards. A standby for an unknown shard is a configuration error.
func attachStandbys(infos []router.ShardInfo, s string) error {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("-standbys entries must be name=url, got %q", part)
		}
		found := false
		for i := range infos {
			if infos[i].Name == name {
				infos[i].Standby = url
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-standbys names shard %q, which is not in -shards", name)
		}
	}
	return nil
}

func run(addr string, cfg router.Config) error {
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The harness contract: the actual bound address on stdout, so callers
	// using :0 can discover the port.
	fmt.Printf("dodroute: listening on %s\n", ln.Addr())
	os.Stdout.Sync() //nolint:errcheck

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Push the initial topology until every shard has it (shards may still
	// be starting), then open for traffic.
	for {
		if err := rt.Start(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			return err
		} else {
			fmt.Fprintln(os.Stderr, "dodroute: topology push failed, retrying:", err)
		}
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	fmt.Fprintf(os.Stderr, "dodroute: serving %d shards (r=%g k=%d dim=%d window=%d ttl=%s)\n",
		len(cfg.Shards), cfg.R, cfg.K, cfg.Dim, cfg.Capacity, cfg.TTL)

	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dodroute: draining (readyz now 503)")
	rt.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
