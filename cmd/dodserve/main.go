// Command dodserve runs the online outlier-detection service: a sliding
// window of streamed points with always-current distance-threshold
// verdicts, served over HTTP as NDJSON.
//
// Usage:
//
//	dodserve -r 5 -k 4 -dim 2 [-window 100000] [-ttl 10m] \
//	    [-addr :8334] [-shards 16] [-workers 0] [-max-batch 100000]
//
// At least one of -window (count capacity) and -ttl (age horizon) must be
// set. Endpoints:
//
//	POST /v1/ingest   NDJSON {"id":7,"coords":[1.5,2.0]} per line; each
//	                  point joins the window and is answered with
//	                  {"id","seq","neighbors","outlier","evicted"}.
//	POST /v1/score    same body; points are scored against the current
//	                  window without being ingested.
//	GET  /healthz     liveness.
//	GET  /readyz      readiness; 503 while draining before shutdown.
//	GET  /statsz      counters and p50/p99 latency histograms (JSON).
//	GET  /metrics     Prometheus text exposition of every instrument:
//	                  request/line counters, latency histograms, window
//	                  occupancy, index ring-expansion depths.
//
// -pprof additionally mounts the net/http/pprof profiling handlers under
// /debug/pprof/. SIGINT/SIGTERM drain in-flight requests before exiting.
//
// With -shard, the process instead runs as one cell-partitioned shard of a
// sharded serving tier behind a dodroute router: it serves the shard wire
// protocol (/v1/shard/*, /v1/support) and holds only the window slice whose
// grid cells it owns under the router-pushed topology. -shard-name sets its
// cluster-unique name; -window and -ttl are ignored (the router owns the
// global eviction discipline). -dedupe sizes the idempotency replay cache.
//
// A shard can be paired with a warm standby for failover:
//
//	-replica URL   makes this shard a replicating primary: every window
//	               mutation is appended to a sequence-numbered op log and
//	               shipped asynchronously to the standby at URL.
//	-standby       runs this process as the warm standby itself: it serves
//	               the /v1/replica endpoints, answers 503 on /readyz until
//	               it has bootstrapped and caught up, and treats a router
//	               topology push as its promotion to primary. Start it with
//	               the SAME -shard-name as its primary — a standby IS its
//	               primary, one promotion away.
//
// With -addr :0 the actual bound address is printed on stdout as
// "dodserve: listening on HOST:PORT", so harnesses can discover the port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dod/internal/serve"
	"dod/internal/stream"
)

func main() {
	var (
		addr     = flag.String("addr", ":8334", "listen address (use :0 for an ephemeral port; the bound address is printed on stdout)")
		shard    = flag.Bool("shard", false, "run as a cell-partitioned shard behind a dodroute router")
		name     = flag.String("shard-name", "", "cluster-unique shard name (required with -shard)")
		r        = flag.Float64("r", 0, "distance threshold (required)")
		k        = flag.Int("k", 0, "neighbor-count threshold (required)")
		dim      = flag.Int("dim", 2, "point dimensionality")
		window   = flag.Int("window", 0, "window capacity in points (0 = unbounded; then -ttl is required)")
		ttl      = flag.Duration("ttl", 0, "window age horizon (0 = none; then -window is required)")
		shards   = flag.Int("shards", 0, "index shard count (0 = default)")
		workers  = flag.Int("workers", 0, "request worker pool size (0 = GOMAXPROCS)")
		maxBatch = flag.Int("max-batch", 0, "max NDJSON lines per request; beyond it the whole request is rejected with 400 batch_too_large (0 = default)")
		inflight = flag.Int("max-inflight", 0, "max concurrently admitted batch requests before 429 shedding (0 = 2x workers)")
		maxBody  = flag.Int64("max-body-bytes", 0, "max request body bytes before 413 (0 = default 64 MiB)")
		dedupe   = flag.Int("dedupe", 0, "idempotency replay cache capacity in entries (0 = default 4096; shard mode only)")
		repl     = flag.String("replica", "", "warm standby base URL to replicate this shard's window to (shard mode only)")
		standby  = flag.Bool("standby", false, "run as a warm standby: replay a primary's op log, refuse readiness until caught up (shard mode only)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	)
	flag.Parse()

	if *shard {
		if *name == "" {
			fmt.Fprintln(os.Stderr, "dodserve: -shard requires -shard-name")
			os.Exit(2)
		}
		scfg := serve.ShardServerConfig{
			Name: *name, R: *r, K: *k, Dim: *dim,
			IndexShards:    *shards,
			MaxBodyBytes:   *maxBody,
			DedupeCapacity: *dedupe,
			Replica:        *repl,
			Standby:        *standby,
		}
		if err := runShard(*addr, scfg); err != nil {
			fmt.Fprintln(os.Stderr, "dodserve:", err)
			os.Exit(1)
		}
		return
	}
	cfg := serve.Config{
		Stream: stream.Config{
			R:        *r,
			K:        *k,
			Dim:      *dim,
			Capacity: *window,
			TTL:      *ttl,
			Shards:   *shards,
		},
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		MaxInflight:  *inflight,
		MaxBodyBytes: *maxBody,
		EnablePprof:  *pprofOn,
	}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dodserve:", err)
		os.Exit(1)
	}
}

// serveListener binds addr, announces the actual bound address on stdout
// (the harness contract for -addr :0), and serves handler until SIGINT or
// SIGTERM, then drains gracefully. setDraining flips /readyz first so load
// balancers stop routing here before the listener closes.
func serveListener(addr string, handler http.Handler, setDraining func(bool)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dodserve: listening on %s\n", ln.Addr())
	os.Stdout.Sync() //nolint:errcheck

	hs := &http.Server{
		Handler: handler,
		// Bound slow-loris headers and dead keepalives; no global write
		// timeout (large score batches stream for a while).
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dodserve: draining (readyz now 503)")
	setDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func run(addr string, cfg serve.Config) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "dodserve: starting (r=%g k=%d dim=%d window=%d ttl=%s)\n",
		cfg.Stream.R, cfg.Stream.K, cfg.Stream.Dim, cfg.Stream.Capacity, cfg.Stream.TTL)
	return serveListener(addr, srv.Handler(), srv.SetDraining)
}

func runShard(addr string, cfg serve.ShardServerConfig) error {
	srv, err := serve.NewShard(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	role := "shard"
	switch {
	case cfg.Standby:
		role = "standby shard"
	case cfg.Replica != "":
		role = fmt.Sprintf("shard (replicating to %s)", cfg.Replica)
	}
	fmt.Fprintf(os.Stderr, "dodserve: starting %s %q (r=%g k=%d dim=%d)\n",
		role, cfg.Name, cfg.R, cfg.K, cfg.Dim)
	return serveListener(addr, srv.Handler(), srv.SetDraining)
}
