package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"dod/internal/serve"
	"dod/internal/stream"
)

func TestRunRejectsBadConfig(t *testing.T) {
	// Missing r/k and missing window bound must fail before listening.
	err := run("127.0.0.1:0", serve.Config{Stream: stream.Config{}})
	if err == nil {
		t.Fatal("empty config accepted")
	}
	err = run("127.0.0.1:0", serve.Config{Stream: stream.Config{R: 1, K: 2, Dim: 2}})
	if err == nil {
		t.Fatal("unbounded window accepted")
	}
}

// TestServeAndGracefulShutdown boots the real binary entry point on an
// ephemeral port, ingests and scores over HTTP, then delivers SIGTERM and
// waits for the drain.
func TestServeAndGracefulShutdown(t *testing.T) {
	// Find a free port, then hand the address to run().
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cfg := serve.Config{Stream: stream.Config{R: 2, K: 1, Dim: 2, Capacity: 100}}
	done := make(chan error, 1)
	go func() { done <- run(addr, cfg) }()

	base := "http://" + addr
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		select {
		case <-waitCtx.Done():
			t.Fatal("server never became healthy")
		case <-time.After(20 * time.Millisecond):
		}
	}

	resp, err := http.Post(base+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(`{"id":1,"coords":[0,0]}`+"\n"+`{"id":2,"coords":[1,0]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line: %v", err)
		}
		if e, ok := v["error"]; ok {
			t.Fatalf("verdict error: %v", e)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d verdict lines, want 2", lines)
	}

	resp2, err := http.Post(base+"/v1/score", "application/x-ndjson",
		strings.NewReader(`{"id":99,"coords":[50,50]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	var score struct {
		Outlier bool `json:"outlier"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&score); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !score.Outlier {
		t.Fatal("distant query scored as inlier")
	}

	// Graceful shutdown on SIGTERM.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}
