package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dod/internal/synth"
)

// captureStdout redirects os.Stdout during fn and returns what was written.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w

	// Drain concurrently so large outputs cannot deadlock the pipe.
	type readResult struct {
		data []byte
		err  error
	}
	done := make(chan readResult, 1)
	go func() {
		data, err := io.ReadAll(r)
		done <- readResult{data, err}
	}()

	runErr := fn()
	w.Close()
	os.Stdout = old
	res := <-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	return res.data
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func genCSV(t *testing.T, kind, segment, level string, n int, density float64, in string) []byte {
	t.Helper()
	return captureStdout(t, func() error {
		return run(kind, segment, level, n, n, density, 200, 5, in, 2, 1.0, 1)
	})
}

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"segment", "level", "uniform", "jittered", "tiger"} {
		out := genCSV(t, kind, "MA", "MA", 500, 0.1, "")
		pts, err := synth.ReadCSV(bytesReader(out))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pts) != 500 {
			t.Errorf("%s: got %d points, want 500", kind, len(pts))
		}
	}
}

func TestGenerateDistort(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.csv")
	f, err := os.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.WriteCSV(f, synth.Segment(synth.Ohio, 100, 1)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := genCSV(t, "distort", "", "", 0, 0.1, base)
	pts, err := synth.ReadCSV(bytesReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 300 { // 100 originals + 2 copies each
		t.Errorf("distort: got %d points, want 300", len(pts))
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run("nope", "", "", 10, 10, 1, 1, 1, "", 1, 1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("distort", "", "", 10, 10, 1, 1, 1, "", 1, 1, 1); err == nil {
		t.Error("distort without -in accepted")
	}
	if err := run("distort", "", "", 10, 10, 1, 1, 1, "/nope.csv", 1, 1, 1); err == nil {
		t.Error("distort with missing file accepted")
	}
}
