// Command dodgen generates the synthetic evaluation datasets as CSV files.
//
// Usage:
//
//	dodgen -kind segment -segment NY -n 30000 -seed 1 > ny.csv
//	dodgen -kind level -level Planet -base 10000 > planet.csv
//	dodgen -kind uniform -n 10000 -density 0.1 > uniform.csv
//	dodgen -kind jittered -n 10000 -density 0.1 > even.csv
//	dodgen -kind tiger -n 50000 -side 800 -roads 25 > tiger.csv
//	dodgen -kind distort -in base.csv -copies 3 -jitter 2.5 > big.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dod/internal/geom"
	"dod/internal/synth"
)

func main() {
	var (
		kind    = flag.String("kind", "segment", "dataset kind: segment | level | uniform | jittered | tiger | distort")
		segment = flag.String("segment", "MA", "segment for -kind segment: OH | MA | CA | NY")
		level   = flag.String("level", "MA", "level for -kind level: MA | NE | US | Planet")
		n       = flag.Int("n", 10000, "point count")
		base    = flag.Int("base", 10000, "per-segment count for -kind level")
		density = flag.Float64("density", 0.1, "density for -kind uniform/jittered")
		side    = flag.Float64("side", 800, "domain side for -kind tiger")
		roads   = flag.Int("roads", 25, "road count for -kind tiger")
		in      = flag.String("in", "", "input CSV for -kind distort")
		copies  = flag.Int("copies", 3, "replicas per point for -kind distort")
		jitter  = flag.Float64("jitter", 2.5, "replica jitter for -kind distort")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*kind, *segment, *level, *n, *base, *density, *side, *roads, *in, *copies, *jitter, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dodgen:", err)
		os.Exit(1)
	}
}

func run(kind, segment, level string, n, base int, density, side float64, roads int, in string, copies int, jitter float64, seed int64) error {
	var points []geom.Point
	switch kind {
	case "segment":
		points = synth.Segment(synth.SegmentKind(segment), n, seed)
	case "level":
		points = synth.Hierarchical(synth.Level(level), base, seed)
	case "uniform":
		points = synth.UniformWithDensity(n, density, seed)
	case "jittered":
		points = synth.JitteredGrid(n, density, seed)
	case "tiger":
		points = synth.TigerLike(n, side, roads, seed)
	case "distort":
		if in == "" {
			return fmt.Errorf("-kind distort requires -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		basePts, err := synth.ReadCSV(f)
		if err != nil {
			return err
		}
		points = synth.Distort(basePts, copies, jitter, seed)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	return synth.WriteCSV(os.Stdout, points)
}
