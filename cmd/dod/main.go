// Command dod detects distance-threshold outliers in a CSV dataset using
// the distributed DOD pipeline.
//
// Usage:
//
//	dod -r 5 -k 4 [-strategy DMT] [-detector CellBased] [-reducers 8] \
//	    [-sample 0.005] [-seed 1] [-stats] input.csv
//
// The input is one point per line: id,x1,x2,...  Output is one outlier ID
// per line on stdout; -stats adds an execution report and the run's stage
// trace on stderr.
//
// With -engine cluster the process embeds a cluster coordinator: it prints
// the dodworker join command on stderr, waits for -workers workers, and
// ships the detection job's tasks to them instead of running in-process.
// Results are byte-identical across engines for the same seed.
//
// -journal PATH additionally checkpoints every settled task result to an
// append-only log: if the run is killed, re-running the same command with
// the same -journal resumes from the checkpoint — already-settled tasks
// are answered from disk and the output is byte-identical to an
// uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"dod"
	"dod/internal/synth"
)

func main() {
	// Detector and Strategy implement flag.Value, so the flags parse and
	// validate themselves (any case, hyphens optional).
	detector := dod.CellBased
	strategy := dod.StrategyDMT
	var (
		r        = flag.Float64("r", 0, "distance threshold (required)")
		k        = flag.Int("k", 0, "neighbor-count threshold (required)")
		reducers = flag.Int("reducers", 8, "number of reduce tasks")
		sample   = flag.Float64("sample", 0.05, "preprocessing sampling rate Υ")
		seed     = flag.Int64("seed", 1, "random seed")
		stats    = flag.Bool("stats", false, "print an execution report and stage trace to stderr")
		explain  = flag.Bool("explain", false, "print a per-partition table (tactic, estimated vs. actual cost) to stderr")
		approx   = flag.Bool("approx", false, "allow approximate detectors (e.g. Sens-Sample)")
		planOut  = flag.String("plan", "", "write the generated partition plan as JSON to this file")

		engine     = flag.String("engine", "local", "execution engine: local | cluster")
		listen     = flag.String("listen", "127.0.0.1:0", "cluster engine: coordinator listen address")
		workers    = flag.Int("workers", 1, "cluster engine: workers to wait for before detecting")
		workerWait = flag.Duration("worker-wait", 60*time.Second, "cluster engine: how long to wait for workers to join")
		journal    = flag.String("journal", "", "cluster engine: checkpoint journal path; a restarted run replays settled tasks from it")
	)
	flag.Var(&strategy, "strategy", "partitioning strategy: Domain | uniSpace | DDriven | CDriven | DMT")
	flag.Var(&detector, "detector", "detector for single-tactic strategies: NestedLoop | CellBased | CellBasedL2 | KDTree | BruteForce | Prox-Graph | Sens-Sample")
	flag.Parse()

	if err := run(runOpts{
		r: *r, k: *k, strategy: strategy, detector: detector,
		reducers: *reducers, sample: *sample, seed: *seed,
		stats: *stats, explain: *explain, approx: *approx, planOut: *planOut,
		engine: *engine, listen: *listen, workers: *workers, workerWait: *workerWait,
		journal: *journal,
		args:    flag.Args(),
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dod:", err)
		os.Exit(1)
	}
}

// runOpts mirrors the command line; the zero value of the cluster fields
// means the local engine.
type runOpts struct {
	r        float64
	k        int
	strategy dod.Strategy
	detector dod.Detector
	reducers int
	sample   float64
	seed     int64
	stats    bool
	explain  bool
	approx   bool
	planOut  string

	engine     string
	listen     string
	workers    int
	workerWait time.Duration
	journal    string

	args []string
}

func run(o runOpts) error {
	if len(o.args) != 1 {
		return fmt.Errorf("expected exactly one input CSV file, got %d args", len(o.args))
	}
	if o.r <= 0 || o.k < 1 {
		return fmt.Errorf("both -r (> 0) and -k (>= 1) are required")
	}

	f, err := os.Open(o.args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	points, err := synth.ReadCSV(f)
	if err != nil {
		return err
	}

	cfg := dod.Config{
		R:           o.r,
		K:           o.k,
		Strategy:    o.strategy,
		Detector:    o.detector,
		NumReducers: o.reducers,
		SampleRate:  o.sample,
		Seed:        o.seed,
		AllowApprox: o.approx,
	}
	switch o.engine {
	case "", "local":
	case "cluster":
		logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
		coord, err := dod.NewCoordinator(dod.CoordinatorConfig{Listen: o.listen, JournalPath: o.journal, Logf: logf})
		if err != nil {
			return err
		}
		defer coord.Close()
		fmt.Fprintf(os.Stderr, "dod: coordinator listening; join workers with: dodworker -join %s\n", coord.URL())
		ctx, cancel := context.WithTimeout(context.Background(), o.workerWait)
		err = coord.WaitForWorkers(ctx, o.workers)
		cancel()
		if err != nil {
			return err
		}
		cfg.Engine = dod.EngineCluster
		cfg.Coordinator = coord
	default:
		return fmt.Errorf("unknown -engine %q (local | cluster)", o.engine)
	}

	res, err := dod.Detect(points, cfg)
	if err != nil {
		return err
	}
	for _, id := range res.OutlierIDs {
		fmt.Println(id)
	}
	if o.planOut != "" {
		data, err := json.MarshalIndent(res.Report.Plan, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.planOut, data, 0o644); err != nil {
			return err
		}
	}
	if o.stats {
		rep := res.Report
		fmt.Fprintf(os.Stderr, "points: %d   outliers: %d   partitions: %d   jobs: %d   engine: %s\n",
			len(points), len(res.OutlierIDs), len(rep.Plan.Partitions), rep.NumJobs, rep.Engine)
		fmt.Fprintf(os.Stderr, "simulated cluster time: preprocess=%v map=%v shuffle=%v reduce=%v total=%v\n",
			rep.Simulated.Preprocess, rep.Simulated.Map, rep.Simulated.Shuffle, rep.Simulated.Reduce, rep.Simulated.Total())
		fmt.Fprintf(os.Stderr, "shuffle: %d records (%d bytes); support records: %d; distance computations: %d; reduce imbalance: %.2f\n",
			rep.ShuffleRecords, rep.ShuffleBytes, rep.SupportRecords, rep.DistComps, rep.ReduceImbalance)
		fmt.Fprint(os.Stderr, rep.Trace.String())
	}
	if o.explain {
		printExplain(os.Stderr, res)
	}
	return nil
}

// printExplain renders the per-partition plan-versus-actual table: the
// tactic the planner assigned, what it expected the partition to cost,
// and the distance computations the run actually spent there.
func printExplain(w io.Writer, res *dod.Result) {
	details := res.PartitionDetails()
	if len(details) == 0 {
		fmt.Fprintln(w, "explain: no plan recorded for this run")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "PART\tALGO\tREDUCER\tEST-COUNT\tEST-COST\tCORE\tSUPPORT\tDIST-COMPS\tOUTLIERS\t")
	var estCost float64
	var distComps, outliers int64
	for _, d := range details {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.0f\t%.3g\t%d\t%d\t%d\t%d\t\n",
			d.ID, d.Algo, d.Reducer, d.EstCount, d.EstCost, d.Core, d.Support, d.DistComps, d.Outliers)
		estCost += d.EstCost
		distComps += d.DistComps
		outliers += d.Outliers
	}
	fmt.Fprintf(tw, "total\t\t\t\t%.3g\t\t\t%d\t%d\t\n", estCost, distComps, outliers)
	tw.Flush()
}
