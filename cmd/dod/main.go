// Command dod detects distance-threshold outliers in a CSV dataset using
// the distributed DOD pipeline.
//
// Usage:
//
//	dod -r 5 -k 4 [-strategy DMT] [-detector CellBased] [-reducers 8] \
//	    [-sample 0.005] [-seed 1] [-stats] input.csv
//
// The input is one point per line: id,x1,x2,...  Output is one outlier ID
// per line on stdout; -stats adds an execution report and the run's stage
// trace on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dod"
	"dod/internal/synth"
)

func main() {
	// Detector and Strategy implement flag.Value, so the flags parse and
	// validate themselves (any case, hyphens optional).
	detector := dod.CellBased
	strategy := dod.StrategyDMT
	var (
		r        = flag.Float64("r", 0, "distance threshold (required)")
		k        = flag.Int("k", 0, "neighbor-count threshold (required)")
		reducers = flag.Int("reducers", 8, "number of reduce tasks")
		sample   = flag.Float64("sample", 0.05, "preprocessing sampling rate Υ")
		seed     = flag.Int64("seed", 1, "random seed")
		stats    = flag.Bool("stats", false, "print an execution report and stage trace to stderr")
		planOut  = flag.String("plan", "", "write the generated partition plan as JSON to this file")
	)
	flag.Var(&strategy, "strategy", "partitioning strategy: Domain | uniSpace | DDriven | CDriven | DMT")
	flag.Var(&detector, "detector", "detector for single-tactic strategies: NestedLoop | CellBased | CellBasedL2 | KDTree | BruteForce")
	flag.Parse()

	if err := run(*r, *k, strategy, detector, *reducers, *sample, *seed, *stats, *planOut, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dod:", err)
		os.Exit(1)
	}
}

func run(r float64, k int, strategy dod.Strategy, detector dod.Detector, reducers int, sample float64, seed int64, stats bool, planOut string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one input CSV file, got %d args", len(args))
	}
	if r <= 0 || k < 1 {
		return fmt.Errorf("both -r (> 0) and -k (>= 1) are required")
	}

	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	points, err := synth.ReadCSV(f)
	if err != nil {
		return err
	}

	res, err := dod.Detect(points, dod.Config{
		R:           r,
		K:           k,
		Strategy:    strategy,
		Detector:    detector,
		NumReducers: reducers,
		SampleRate:  sample,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	for _, id := range res.OutlierIDs {
		fmt.Println(id)
	}
	if planOut != "" {
		data, err := json.MarshalIndent(res.Report.Plan, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(planOut, data, 0o644); err != nil {
			return err
		}
	}
	if stats {
		rep := res.Report
		fmt.Fprintf(os.Stderr, "points: %d   outliers: %d   partitions: %d   jobs: %d\n",
			len(points), len(res.OutlierIDs), len(rep.Plan.Partitions), rep.NumJobs)
		fmt.Fprintf(os.Stderr, "simulated cluster time: preprocess=%v map=%v shuffle=%v reduce=%v total=%v\n",
			rep.Simulated.Preprocess, rep.Simulated.Map, rep.Simulated.Shuffle, rep.Simulated.Reduce, rep.Simulated.Total())
		fmt.Fprintf(os.Stderr, "shuffle: %d records (%d bytes); support records: %d; distance computations: %d; reduce imbalance: %.2f\n",
			rep.ShuffleRecords, rep.ShuffleBytes, rep.SupportRecords, rep.DistComps, rep.ReduceImbalance)
		fmt.Fprint(os.Stderr, rep.Trace.String())
	}
	return nil
}
