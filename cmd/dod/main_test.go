package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dod"
	"dod/internal/synth"
)

func TestParseDetector(t *testing.T) {
	cases := map[string]dod.Detector{
		"NestedLoop":    dod.NestedLoop,
		"Nested-Loop":   dod.NestedLoop,
		"nestedloop":    dod.NestedLoop,
		"CellBased":     dod.CellBased,
		"Cell-Based":    dod.CellBased,
		"CellBasedL2":   dod.CellBasedL2,
		"Cell-Based-L2": dod.CellBasedL2,
		"KDTree":        dod.KDTree,
		"KD-Tree":       dod.KDTree,
		"BruteForce":    dod.BruteForce,
		"Prox-Graph":    dod.ProxGraph,
		"proxgraph":     dod.ProxGraph,
		"Sens-Sample":   dod.SensSample,
		"senssample":    dod.SensSample,
	}
	for name, want := range cases {
		got, err := dod.ParseDetector(name)
		if err != nil {
			t.Errorf("ParseDetector(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseDetector(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := dod.ParseDetector("bogus"); err == nil {
		t.Error("bogus detector accepted")
	}
}

// TestFlagValueRoundTrip drives the flag.Value implementations the command
// registers with flag.Var.
func TestFlagValueRoundTrip(t *testing.T) {
	det := dod.CellBased
	if err := det.Set("kd-tree"); err != nil {
		t.Fatal(err)
	}
	if det != dod.KDTree || det.String() != "KD-Tree" {
		t.Errorf("detector Set/String round-trip: %v %q", det, det.String())
	}
	if err := det.Set("nope"); err == nil {
		t.Error("bad detector accepted by Set")
	}
	strat := dod.StrategyDMT
	if err := strat.Set("unispace"); err != nil {
		t.Fatal(err)
	}
	if strat != dod.StrategyUniSpace || strat.String() != "uniSpace" {
		t.Errorf("strategy Set/String round-trip: %v %q", strat, strat.String())
	}
	if err := strat.Set("nope"); err == nil {
		t.Error("bad strategy accepted by Set")
	}
}

func writeTestCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "points.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := synth.WriteCSV(f, synth.Segment(synth.Massachusetts, 2000, 1)); err != nil {
		t.Fatal(err)
	}
	return path
}

// baseOpts builds the options TestRun* start from: a valid local run over
// the generated CSV.
func baseOpts(path string) runOpts {
	return runOpts{
		r: 5, k: 4, strategy: dod.StrategyDMT, detector: dod.CellBased,
		reducers: 4, sample: 1.0, seed: 1, args: []string{path},
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestCSV(t)
	o := baseOpts(path)
	o.stats = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesPlanJSON(t *testing.T) {
	path := writeTestCSV(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	o := baseOpts(path)
	o.planOut = planPath
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name       string `json:"name"`
		Partitions []any  `json:"partitions"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("plan file is not valid JSON: %v", err)
	}
	if decoded.Name != "DMT" || len(decoded.Partitions) == 0 {
		t.Errorf("plan dump: name=%q partitions=%d", decoded.Name, len(decoded.Partitions))
	}
}

// TestRunExplain drives the -explain path end to end and checks the table
// renders one row per plan partition plus the totals line.
func TestRunExplain(t *testing.T) {
	path := writeTestCSV(t)
	o := baseOpts(path)
	o.explain = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	points, err := synth.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dod.Detect(points, dod.Config{R: 5, K: 4, SampleRate: 1, Seed: 1, Strategy: dod.StrategyDMT})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	printExplain(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "ALGO") || !strings.Contains(out, "DIST-COMPS") {
		t.Errorf("explain table missing header:\n%s", out)
	}
	rows := strings.Count(out, "\n")
	// header + one row per partition + totals
	if want := len(res.Report.Plan.Partitions) + 2; rows != want {
		t.Errorf("explain table has %d lines, want %d:\n%s", rows, want, out)
	}
	printExplain(&buf, &dod.Result{}) // no plan: must not panic
}

// TestRunApproxGate: -detector Sens-Sample is refused without -approx and
// accepted with it.
func TestRunApproxGate(t *testing.T) {
	path := writeTestCSV(t)
	o := baseOpts(path)
	o.strategy = dod.StrategyCDriven
	o.detector = dod.SensSample
	if err := run(o); err == nil {
		t.Error("Sens-Sample accepted without -approx")
	}
	o.approx = true
	if err := run(o); err != nil {
		t.Errorf("Sens-Sample with -approx failed: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	path := writeTestCSV(t)
	edit := func(f func(*runOpts)) runOpts {
		o := baseOpts(path)
		f(&o)
		return o
	}
	cases := []struct {
		name string
		opts runOpts
	}{
		{"no args", edit(func(o *runOpts) { o.args = nil })},
		{"two args", edit(func(o *runOpts) { o.args = []string{"a", "b"} })},
		{"bad r", edit(func(o *runOpts) { o.r = 0 })},
		{"bad k", edit(func(o *runOpts) { o.k = 0 })},
		{"bad strategy", edit(func(o *runOpts) { o.strategy = dod.Strategy("nope") })},
		{"bad engine", edit(func(o *runOpts) { o.engine = "fogcomputing" })},
		{"missing file", edit(func(o *runOpts) { o.args = []string{"/nope.csv"} })},
	}
	for _, tc := range cases {
		if err := run(tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
