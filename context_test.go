package dod

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// contextTestConfig is a small but non-trivial pipeline configuration so a
// cancelled run has stages left to skip.
func contextTestConfig() Config {
	return Config{R: 5, K: 4, NumReducers: 4, SampleRate: 1, Seed: 1}
}

func TestDetectContextPreCancelled(t *testing.T) {
	points := testDataset(5000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DetectContext(ctx, points, contextTestConfig())
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The contract is that the error is exactly ctx.Err(), not a wrapper.
	if err != context.Canceled {
		t.Fatalf("err = %#v, want the bare context.Canceled", err)
	}
}

func TestDetectContextCancelMidRun(t *testing.T) {
	points := testDataset(20000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := DetectContext(ctx, points, contextTestConfig())
	elapsed := time.Since(start)
	if err == nil {
		// The run can legitimately win the race on a fast machine; the
		// cancellation contract only covers runs that observe ctx done.
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is cooperative at task granularity, so the run should
	// stop well before a full detection would complete. The bound is
	// generous to stay robust on loaded CI machines.
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

// TestDetectContextNoGoroutineLeak verifies that a cancelled run does not
// strand worker goroutines: the count returns to its baseline once
// in-flight tasks drain.
func TestDetectContextNoGoroutineLeak(t *testing.T) {
	points := testDataset(10000, 3)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := DetectContext(ctx, points, contextTestConfig()); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDetectDelegatesToContext(t *testing.T) {
	points := testDataset(2000, 3)
	res1, err := Detect(points, contextTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := DetectContext(context.Background(), points, contextTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.OutlierIDs) != len(res2.OutlierIDs) {
		t.Fatalf("Detect found %d outliers, DetectContext %d", len(res1.OutlierIDs), len(res2.OutlierIDs))
	}
}

func TestResultTrace(t *testing.T) {
	points := testDataset(3000, 3)
	res, err := Detect(points, contextTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	spans := res.Trace()
	if len(spans) == 0 {
		t.Fatal("run recorded no trace spans")
	}
	want := map[string]bool{"preprocess": false, "plan": false, "map": false, "shuffle": false, "reduce": false, "partition.detect": false}
	for _, s := range spans {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace is missing a %q span", name)
		}
	}
	for _, s := range spans {
		if s.Name == "partition.detect" {
			if s.Attrs["algo"] == "" {
				t.Errorf("partition.detect span lacks algo attr: %v", s.Attrs)
			}
			break
		}
	}
}
