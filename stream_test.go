package dod

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestNewStreamDetectorValidation(t *testing.T) {
	if _, err := NewStreamDetector(StreamConfig{R: 1, K: 2, Dim: 2}); err == nil {
		t.Fatal("config without a window bound accepted")
	}
	if _, err := NewStreamDetector(StreamConfig{K: 2, Dim: 2, WindowCapacity: 10}); err == nil {
		t.Fatal("config without R accepted")
	}
}

// TestStreamDetectorMatchesBatch ingests a drifting stream through the
// public facade and checks, repeatedly, that the live window verdicts equal
// DetectCentralized on the snapshotted contents.
func TestStreamDetectorMatchesBatch(t *testing.T) {
	const (
		r        = 1.4
		k        = 3
		capacity = 80
	)
	det, err := NewStreamDetector(StreamConfig{
		R: r, K: k, Dim: 2, WindowCapacity: capacity, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 300; i++ {
		p := Point{
			ID:     uint64(i),
			Coords: []float64{rng.Float64()*5 + float64(i)/50, rng.Float64() * 5},
		}
		if _, err := det.ProcessAt(p, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
		if i%13 != 0 {
			continue
		}
		snap := det.Snapshot()
		want, err := DetectCentralized(snap.Points, BruteForce, r, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.OutlierIDs) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(snap.OutlierIDs, want) {
			t.Fatalf("step %d: stream outliers %v != batch %v", i, snap.OutlierIDs, want)
		}
	}
	st := det.Stats()
	if st.Ingested != 300 || st.Len != capacity {
		t.Fatalf("stats %+v", st)
	}
}

func TestStreamDetectorScoreAndTTL(t *testing.T) {
	det, err := NewStreamDetector(StreamConfig{
		R: 2, K: 2, Dim: 2, WindowTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		p := Point{ID: uint64(i), Coords: []float64{float64(i) * 0.3, 0}}
		if _, err := det.ProcessAt(p, base); err != nil {
			t.Fatal(err)
		}
	}
	in, err := det.Score(Point{ID: 100, Coords: []float64{0.5, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if in.Outlier {
		t.Fatalf("cluster query scored outlier: %+v", in)
	}
	out, err := det.Score(Point{ID: 101, Coords: []float64{40, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Outlier {
		t.Fatalf("distant query scored inlier: %+v", out)
	}
	if n := det.EvictExpired(base.Add(2 * time.Minute)); n != 6 {
		t.Fatalf("EvictExpired drained %d points, want 6", n)
	}
	if st := det.Stats(); st.Len != 0 {
		t.Fatalf("window not empty after TTL drain: %+v", st)
	}
}
