package dod

import (
	"math/rand"
	"testing"
)

func clusteredPoints(seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []Point
	id := uint64(0)
	for _, c := range [][2]float64{{15, 15}, {60, 20}, {40, 70}} {
		for i := 0; i < 150; i++ {
			pts = append(pts, Point{ID: id, Coords: []float64{
				c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64(),
			}})
			id++
		}
	}
	pts = append(pts, Point{ID: 9999, Coords: []float64{95, 95}}) // noise
	return pts
}

func TestDBSCANFindsClusters(t *testing.T) {
	pts := clusteredPoints(1)
	res, err := DBSCAN(pts, DBSCANConfig{Eps: 2, MinPts: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 3 {
		t.Errorf("got %d clusters, want 3", res.NumClusters)
	}
	if res.Labels[9999] != DBSCANNoise {
		t.Errorf("isolated point labeled %d, want noise", res.Labels[9999])
	}
}

func TestDBSCANMatchesCentralized(t *testing.T) {
	pts := clusteredPoints(3)
	dist, err := DBSCAN(pts, DBSCANConfig{Eps: 2, MinPts: 4, NumPartitions: 25, NumReducers: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	central, err := DBSCANCentralized(pts, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dist.NumClusters != central.NumClusters {
		t.Errorf("cluster counts: distributed %d, centralized %d", dist.NumClusters, central.NumClusters)
	}
	// Same-cluster relation must agree (labels may be renumbered).
	mapping := map[int]int{}
	for id, lc := range central.Labels {
		ld := dist.Labels[id]
		if (lc == DBSCANNoise) != (ld == DBSCANNoise) {
			t.Fatalf("point %d noise status differs", id)
		}
		if lc == DBSCANNoise {
			continue
		}
		if prev, ok := mapping[lc]; ok && prev != ld {
			t.Fatalf("cluster %d maps to both %d and %d", lc, prev, ld)
		}
		mapping[lc] = ld
	}
}

func TestDBSCANValidation(t *testing.T) {
	if _, err := DBSCAN(nil, DBSCANConfig{Eps: 1, MinPts: 2}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := DBSCAN(clusteredPoints(5), DBSCANConfig{Eps: 0, MinPts: 2}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestLOCIMatchesCentralized(t *testing.T) {
	// A dense jittered field with one carved hole and a lone point inside.
	rng := rand.New(rand.NewSource(31))
	var pts []Point
	id := uint64(0)
	for gx := 0; gx < 40; gx++ {
		for gy := 0; gy < 40; gy++ {
			x, y := float64(gx)+rng.Float64(), float64(gy)+rng.Float64()
			if dx, dy := x-20, y-20; dx*dx+dy*dy < 25 {
				continue
			}
			pts = append(pts, Point{ID: id, Coords: []float64{x, y}})
			id++
		}
	}
	pts = append(pts, Point{ID: 77777, Coords: []float64{20, 20}})

	dist, err := LOCI(pts, LOCIConfig{R: 6, NumPartitions: 16, NumReducers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	central, err := LOCICentralized(pts, 6, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != len(central) {
		t.Fatalf("distributed %d outliers, centralized %d", len(dist), len(central))
	}
	for i := range dist {
		if dist[i] != central[i] {
			t.Fatalf("outlier %d differs: %d vs %d", i, dist[i], central[i])
		}
	}
	found := false
	for _, oid := range dist {
		if oid == 77777 {
			found = true
		}
	}
	if !found {
		t.Error("lone point in the hole not flagged")
	}
}

func TestLOCIValidation(t *testing.T) {
	if _, err := LOCI(nil, LOCIConfig{R: 1}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := LOCICentralized([]Point{{ID: 1, Coords: []float64{0, 0}}}, -1, 0.5, 3); err == nil {
		t.Error("negative r accepted")
	}
}

func TestKNNOutliersMatchCentralized(t *testing.T) {
	pts := testDataset(700, 41)
	want, err := KNNOutliersCentralized(pts, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KNNOutliers(pts, KNNConfig{K: 5, N: 6, NumPartitions: 16, NumReducers: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d outliers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: %d vs %d", i, got[i].ID, want[i].ID)
		}
	}
	// The three planted far points must rank in the top 6.
	planted := map[uint64]bool{90001: true, 90002: true, 90003: true}
	hits := 0
	for _, o := range got {
		if planted[o.ID] {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("only %d/3 planted outliers in top 6: %v", hits, got)
	}
}

func TestKNNOutliersValidation(t *testing.T) {
	if _, err := KNNOutliers(nil, KNNConfig{K: 1, N: 1}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := KNNOutliersCentralized(testDataset(50, 1), 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDetectWithExactSupportAndFailures(t *testing.T) {
	pts := testDataset(900, 21)
	want, err := DetectCentralized(pts, BruteForce, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(pts, Config{
		R: 5, K: 4,
		ExactSupport: true,
		FailureRate:  0.2,
		SampleRate:   1,
		Seed:         22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OutlierIDs) != len(want) {
		t.Fatalf("exact-support run found %d outliers, want %d", len(res.OutlierIDs), len(want))
	}
	for i := range want {
		if res.OutlierIDs[i] != want[i] {
			t.Fatalf("outlier %d differs", i)
		}
	}
}
