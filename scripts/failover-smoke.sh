#!/usr/bin/env bash
# Warm-standby failover smoke: a dodroute router over 3 real dodserve shard
# processes, one of them replicating to a warm standby, must keep producing
# an ingest verdict stream byte-identical to one single-process dodserve fed
# the same seeded workload — across a kill -9 of the replicated primary and
# the promotion of its standby. Also asserts the anti-entropy digests match
# at the promotion point and that the router counted zero lost ops.
#
# Usage: scripts/failover-smoke.sh [BIN_DIR]
# BIN_DIR must hold dodserve and dodroute (default: ./bin).
set -euo pipefail

BIN=${1:-bin}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

R=1.2 K=3 DIM=2 WINDOW=400

# wait_addr LOGFILE: block until the process announces its bound address on
# stdout ("...: listening on HOST:PORT") and print a dialable 127.0.0.1 URL.
wait_addr() {
  local log=$1 addr=
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*: listening on //p' "$log" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "no listen line in $log" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "http://127.0.0.1:${addr##*:}"
}

# json_get URL FIELD: print one top-level field of a JSON response.
json_get() {
  curl -sS "$1" | python3 -c "import json,sys; print(json.load(sys.stdin)[sys.argv[1]])" "$2"
}

# Seeded deterministic workload: two NDJSON halves (the kill + promotion
# happens in between), with malformed lines and duplicate IDs mixed in so
# the error paths are compared too.
python3 - "$WORK" <<'EOF'
import random, sys
random.seed(43)
work = sys.argv[1]
next_id = 0
for part in (1, 2):
    with open(f"{work}/part{part}.ndjson", "w") as f:
        for _ in range(600):
            global_roll = random.random()
            if global_roll < 0.02:
                f.write("{oops\n")
            elif global_roll < 0.05 and next_id > 10:
                dup = next_id - random.randrange(1, 10)
                f.write('{"id":%d,"coords":[%.6f,%.6f]}\n'
                        % (dup, random.uniform(0, 12), random.uniform(0, 12)))
            else:
                next_id += 1
                f.write('{"id":%d,"coords":[%.6f,%.6f]}\n'
                        % (next_id, random.uniform(0, 12), random.uniform(0, 12)))
EOF

# Reference: one single-process dodserve holding the whole window.
"$BIN/dodserve" -addr :0 -r $R -k $K -dim $DIM -window $WINDOW \
  >"$WORK/ref.log" 2>"$WORK/ref.err" &
REF_URL=$(wait_addr "$WORK/ref.log")

# s1's warm standby comes up first: the primary replicates to it from the
# first ingested point.
"$BIN/dodserve" -addr :0 -shard -shard-name s1 -standby -r $R -k $K -dim $DIM \
  >"$WORK/s1-standby.log" 2>"$WORK/s1-standby.err" &
STBY_URL=$(wait_addr "$WORK/s1-standby.log")

# Three shard processes; s1 is the replicated primary.
SHARD_ARGS=""
declare -A SHARD_PID
for i in 0 1 2; do
  EXTRA=()
  [ "$i" = 1 ] && EXTRA=(-replica "$STBY_URL")
  "$BIN/dodserve" -addr :0 -shard -shard-name "s$i" -r $R -k $K -dim $DIM "${EXTRA[@]}" \
    >"$WORK/s$i.log" 2>"$WORK/s$i.err" &
  SHARD_PID[$i]=$!
  URL=$(wait_addr "$WORK/s$i.log")
  SHARD_ARGS="${SHARD_ARGS:+$SHARD_ARGS,}s$i=$URL"
  [ "$i" = 1 ] && S1_URL=$URL
done

# The router in front, told about the standby (block 2 keeps shard
# boundaries dense, maximizing cross-shard support traffic).
"$BIN/dodroute" -addr :0 -r $R -k $K -dim $DIM -window $WINDOW \
  -shards "$SHARD_ARGS" -standbys "s1=$STBY_URL" -block 2 \
  >"$WORK/route.log" 2>"$WORK/route.err" &
ROUTE_URL=$(wait_addr "$WORK/route.log")

post() { # post URL FILE OUT
  curl -sS --fail-with-body -X POST --data-binary @"$2" "$1/v1/ingest" >>"$3"
}

echo "failover-smoke: part 1 (3 shards, s1 replicating to a warm standby)"
post "$REF_URL" "$WORK/part1.ndjson" "$WORK/ref.out"
post "$ROUTE_URL" "$WORK/part1.ndjson" "$WORK/route.out"

echo "failover-smoke: waiting for the standby to ack every op"
SYNCED=false
for _ in $(seq 1 100); do
  if [ "$(json_get "$S1_URL/v1/replica/status" synced)" = "True" ]; then
    SYNCED=true
    break
  fi
  sleep 0.1
done
if [ "$SYNCED" != true ]; then
  echo "standby never caught up:" >&2
  curl -sS "$S1_URL/v1/replica/status" >&2 || true
  exit 1
fi

# Anti-entropy: primary and standby must hold bit-identical window state.
PRIM_DIGEST=$(json_get "$S1_URL/v1/shard/digest" digest)
STBY_DIGEST=$(json_get "$STBY_URL/v1/shard/digest" digest)
if [ "$PRIM_DIGEST" != "$STBY_DIGEST" ]; then
  echo "digest mismatch: primary $PRIM_DIGEST standby $STBY_DIGEST" >&2
  exit 1
fi
echo "failover-smoke: digests match ($PRIM_DIGEST)"

echo "failover-smoke: kill -9 primary s1, promote its standby"
kill -9 "${SHARD_PID[1]}"
wait "${SHARD_PID[1]}" 2>/dev/null || true
curl -sS --fail-with-body -X POST "$ROUTE_URL/v1/promote?shard=s1"
echo

echo "failover-smoke: part 2 (standby serving as s1)"
post "$REF_URL" "$WORK/part2.ndjson" "$WORK/ref.out"
post "$ROUTE_URL" "$WORK/part2.ndjson" "$WORK/route.out"

diff "$WORK/ref.out" "$WORK/route.out"

LOST=$(json_get "$ROUTE_URL/statsz" replica_lost)
PROMOTES=$(json_get "$ROUTE_URL/statsz" promotes)
if [ "$LOST" != 0 ] || [ "$PROMOTES" -lt 1 ]; then
  echo "statsz: replica_lost=$LOST promotes=$PROMOTES, want 0 lost and >=1 promote" >&2
  exit 1
fi
echo "failover-smoke: verdict streams byte-identical across the failover ($(wc -l <"$WORK/ref.out") lines, $LOST ops lost)"
