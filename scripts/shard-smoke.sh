#!/usr/bin/env bash
# Multi-shard loopback smoke: a dodroute router over 3 real dodserve shard
# processes must produce an ingest verdict stream byte-identical to one
# single-process dodserve fed the same seeded workload — including across a
# mid-stream drain of one shard, whose process is then killed.
#
# Usage: scripts/shard-smoke.sh [BIN_DIR]
# BIN_DIR must hold dodserve and dodroute (default: ./bin).
set -euo pipefail

BIN=${1:-bin}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

R=1.2 K=3 DIM=2 WINDOW=400

# wait_addr LOGFILE: block until the process announces its bound address on
# stdout ("...: listening on HOST:PORT") and print a dialable 127.0.0.1 URL.
wait_addr() {
  local log=$1 addr=
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*: listening on //p' "$log" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "no listen line in $log" >&2
    cat "$log" >&2
    exit 1
  fi
  echo "http://127.0.0.1:${addr##*:}"
}

# Seeded deterministic workload: two NDJSON halves (the drain happens in
# between), with malformed lines and duplicate IDs mixed in so the error
# paths are compared too.
python3 - "$WORK" <<'EOF'
import random, sys
random.seed(42)
work = sys.argv[1]
next_id = 0
for part in (1, 2):
    with open(f"{work}/part{part}.ndjson", "w") as f:
        for _ in range(600):
            global_roll = random.random()
            if global_roll < 0.02:
                f.write("{oops\n")
            elif global_roll < 0.05 and next_id > 10:
                dup = next_id - random.randrange(1, 10)
                f.write('{"id":%d,"coords":[%.6f,%.6f]}\n'
                        % (dup, random.uniform(0, 12), random.uniform(0, 12)))
            else:
                next_id += 1
                f.write('{"id":%d,"coords":[%.6f,%.6f]}\n'
                        % (next_id, random.uniform(0, 12), random.uniform(0, 12)))
EOF

# Reference: one single-process dodserve holding the whole window.
"$BIN/dodserve" -addr :0 -r $R -k $K -dim $DIM -window $WINDOW \
  >"$WORK/ref.log" 2>"$WORK/ref.err" &
REF_URL=$(wait_addr "$WORK/ref.log")

# Three shard processes.
SHARD_ARGS=""
declare -A SHARD_PID
for i in 0 1 2; do
  "$BIN/dodserve" -addr :0 -shard -shard-name "s$i" -r $R -k $K -dim $DIM \
    >"$WORK/s$i.log" 2>"$WORK/s$i.err" &
  SHARD_PID[$i]=$!
  URL=$(wait_addr "$WORK/s$i.log")
  SHARD_ARGS="${SHARD_ARGS:+$SHARD_ARGS,}s$i=$URL"
done

# The router in front (block 2 keeps shard boundaries dense, maximizing
# cross-shard support traffic).
"$BIN/dodroute" -addr :0 -r $R -k $K -dim $DIM -window $WINDOW \
  -shards "$SHARD_ARGS" -block 2 \
  >"$WORK/route.log" 2>"$WORK/route.err" &
ROUTE_URL=$(wait_addr "$WORK/route.log")

post() { # post URL FILE OUT
  curl -sS --fail-with-body -X POST --data-binary @"$2" "$1/v1/ingest" >>"$3"
}

echo "smoke: part 1 (${#SHARD_PID[@]} shards)"
post "$REF_URL" "$WORK/part1.ndjson" "$WORK/ref.out"
post "$ROUTE_URL" "$WORK/part1.ndjson" "$WORK/route.out"

echo "smoke: draining shard s1, then killing its process"
curl -sS --fail-with-body -X POST "$ROUTE_URL/v1/drain?shard=s1"
echo
kill "${SHARD_PID[1]}"
wait "${SHARD_PID[1]}" 2>/dev/null || true

echo "smoke: part 2 (s1 gone)"
post "$REF_URL" "$WORK/part2.ndjson" "$WORK/ref.out"
post "$ROUTE_URL" "$WORK/part2.ndjson" "$WORK/route.out"

diff "$WORK/ref.out" "$WORK/route.out"
echo "smoke: verdict streams byte-identical ($(wc -l <"$WORK/ref.out") lines)"
