package dod

import (
	"strings"
	"testing"

	"dod/internal/detect"
)

// enumerateKinds walks the Kind enum by probing String() until it falls
// off the end — reflection over an iota enum. Any kind added to the enum
// is picked up automatically, so parse/String round-trip coverage cannot
// silently lag behind new detectors (the gap this test exists to close:
// earlier PRs added kinds without registering their names).
func enumerateKinds() []detect.Kind {
	var kinds []detect.Kind
	for k := detect.Kind(1); ; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			return kinds
		}
		kinds = append(kinds, k)
	}
}

func TestEveryDetectorKindRoundTrips(t *testing.T) {
	kinds := enumerateKinds()
	// Guard against the probe itself breaking: the enum currently holds 8
	// named kinds past Unspecified and may only grow.
	if len(kinds) < 8 {
		t.Fatalf("enumerated only %d kinds; String() probe broken?", len(kinds))
	}
	for _, k := range kinds {
		parsed, err := ParseDetector(k.String())
		if err != nil {
			t.Errorf("ParseDetector(%q): %v — kind %d missing from the parse registry", k.String(), err, int(k))
			continue
		}
		if parsed != k {
			t.Errorf("ParseDetector(%q) = %v, want %v", k.String(), parsed, k)
		}
		// Every named kind must also be constructible.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("New(%v, 1) panicked: %v — kind missing from the constructor switch", k, r)
				}
			}()
			if d := detect.New(k, 1); d.Kind() != k {
				t.Errorf("New(%v).Kind() = %v", k, d.Kind())
			}
		}()
	}
}

func TestEveryStrategyRoundTrips(t *testing.T) {
	for _, s := range []Strategy{StrategyDomain, StrategyUniSpace, StrategyDDriven, StrategyCDriven, StrategyDMT} {
		parsed, err := ParseStrategy(s.String())
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", s.String(), err)
			continue
		}
		if parsed != s {
			t.Errorf("ParseStrategy(%q) = %v, want %v", s.String(), parsed, s)
		}
		// Case-insensitive variant.
		if parsed, err = ParseStrategy(strings.ToUpper(s.String())); err != nil || parsed != s {
			t.Errorf("ParseStrategy(upper %q) = %v, %v", s.String(), parsed, err)
		}
	}
}

// TestApproximateGate: an approximate detector must be rejected without
// the explicit opt-in and accepted with it.
func TestApproximateGate(t *testing.T) {
	pts := testDataset(400, 3)
	_, err := Detect(pts, Config{R: 5, K: 4, Strategy: StrategyCDriven, Detector: SensSample, SampleRate: 1})
	if err == nil {
		t.Fatal("approximate detector accepted without AllowApprox")
	}
	res, err := Detect(pts, Config{R: 5, K: 4, Strategy: StrategyCDriven, Detector: SensSample, SampleRate: 1, AllowApprox: true})
	if err != nil {
		t.Fatalf("AllowApprox run failed: %v", err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}
