// Geospatial example: find isolated buildings in OpenStreetMap-like data —
// the workload the paper evaluates on (Sec. VI-A).
//
// The dataset mixes a dense metro, suburban towns, and sparse countryside,
// so no single centralized detector is a good fit everywhere: Cell-Based
// excels in the dense metro (everything prunes as inliers) and the empty
// countryside (everything prunes as outliers), Nested-Loop in the
// mid-density band. The example runs every partitioning strategy over the
// same data and prints the comparison the paper's Figs. 7/9 make.
//
// Run with: go run ./examples/geospatial
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dod"
	"dod/internal/synth"
)

func main() {
	// A Massachusetts-like segment: Zipf-weighted towns over a thin rural
	// background, 30k buildings.
	points := synth.Segment(synth.Massachusetts, 30000, 7)

	const (
		r = 5.0 // a building with fewer than...
		k = 4   // ...4 neighbors within 5 units is isolated
	)

	strategies := []dod.Strategy{
		dod.StrategyDomain, dod.StrategyUniSpace, dod.StrategyDDriven,
		dod.StrategyCDriven, dod.StrategyDMT,
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\toutliers\tjobs\tpartitions\tsupport recs\tsim. total\timbalance")
	var firstOutliers []uint64
	for _, s := range strategies {
		res, err := dod.Detect(points, dod.Config{
			R: r, K: k,
			Strategy:   s,
			Detector:   dod.NestedLoop, // fixed detector for single-tactic strategies
			SampleRate: 0.2,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\t%.2f\n",
			s, len(res.OutlierIDs), rep.NumJobs, len(rep.Plan.Partitions),
			rep.SupportRecords, rep.Simulated.Total().Round(10_000), rep.ReduceImbalance)

		// Every strategy must agree on the answer — only the cost differs.
		if firstOutliers == nil {
			firstOutliers = res.OutlierIDs
		} else if !equal(firstOutliers, res.OutlierIDs) {
			log.Fatalf("strategy %s disagreed on the outlier set", s)
		}
	}
	w.Flush()

	fmt.Printf("\nall %d strategies agree: %d isolated buildings among %d\n",
		len(strategies), len(firstOutliers), len(points))
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
