// Streaming: online outlier detection over an unbounded point stream.
//
// dod.Detect answers "which points of this dataset are outliers?" in one
// batch pass. dod.NewStreamDetector answers the serving-time question
// instead: "is this point, arriving right now, an outlier with respect to
// the recent past?" It keeps a sliding window (here: the last 500 points)
// in an incremental grid index and maintains every resident point's
// verdict as neighbors arrive and expire.
//
// The stream below is a sensor that drifts slowly across the plane, with
// occasional glitch readings far off the track. The detector flags the
// glitches as they arrive, and its window verdicts stay identical to what
// the batch detector would say about the same window — which the program
// checks at the end.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dod"
)

func main() {
	det, err := dod.NewStreamDetector(dod.StreamConfig{
		R:              2.0, // neighbor radius
		K:              4,   // fewer than K neighbors within R → outlier
		Dim:            2,
		WindowCapacity: 500, // judge each reading against the last 500
		Shards:         8,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	glitches := 0
	flagged := 0

	for i := 0; i < 3000; i++ {
		// The sensor wanders; its readings cluster around the track.
		cx := float64(i) * 0.01
		p := dod.Point{ID: uint64(i), Coords: []float64{
			cx + rng.NormFloat64()*0.5,
			cx*0.5 + rng.NormFloat64()*0.5,
		}}
		// ~0.5% of readings are glitches far from the track.
		glitch := rng.Float64() < 0.005
		if glitch {
			glitches++
			p.Coords[0] += 30 + rng.Float64()*20
			p.Coords[1] -= 25
		}

		v, err := det.ProcessAt(p, now.Add(time.Duration(i)*time.Second))
		if err != nil {
			log.Fatal(err)
		}
		if v.Outlier {
			flagged++
			kind := "??"
			if glitch {
				kind = "glitch"
			}
			fmt.Printf("seq %4d  point %4d  (%6.2f, %6.2f)  neighbors=%d  OUTLIER  [%s]\n",
				v.Seq, p.ID, p.Coords[0], p.Coords[1], v.Neighbors, kind)
		}
	}

	st := det.Stats()
	fmt.Printf("\ningested %d, window %d, evicted %d, flips in/out %d/%d\n",
		st.Ingested, st.Len, st.Evicted, st.FlipIn, st.FlipOut)
	fmt.Printf("planted glitches: %d, verdicts flagged at arrival: %d\n", glitches, flagged)

	// The window's incremental verdicts are exactly the batch answer on
	// the same contents — the property the whole subsystem is built on.
	snap := det.Snapshot()
	batch, err := dod.DetectCentralized(snap.Points, dod.BruteForce, 2.0, 4)
	if err != nil {
		log.Fatal(err)
	}
	match := len(batch) == len(snap.OutlierIDs)
	for i := 0; match && i < len(batch); i++ {
		match = batch[i] == snap.OutlierIDs[i]
	}
	fmt.Printf("window outliers %d, batch-on-window outliers %d, identical: %v\n",
		len(snap.OutlierIDs), len(batch), match)
}
