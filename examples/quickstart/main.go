// Quickstart: detect distance-threshold outliers in a small 2-D dataset.
//
// A point is an outlier iff it has fewer than K neighbors within distance R
// (Knorr & Ng's definition, Def. 2.2 of the paper). We build two clusters
// of inliers, plant three isolated points, and let the full multi-tactic
// pipeline find them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dod"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Two Gaussian clusters of ordinary points...
	var points []dod.Point
	id := uint64(0)
	addCluster := func(cx, cy float64, n int) {
		for i := 0; i < n; i++ {
			points = append(points, dod.Point{
				ID:     id,
				Coords: []float64{cx + rng.NormFloat64()*2, cy + rng.NormFloat64()*2},
			})
			id++
		}
	}
	addCluster(20, 20, 400)
	addCluster(60, 50, 300)

	// ...and three isolated anomalies.
	for _, c := range [][]float64{{5, 70}, {90, 10}, {85, 85}} {
		points = append(points, dod.Point{ID: id, Coords: c})
		id++
	}

	// Detect with R=4, K=3: an outlier has fewer than 3 neighbors within
	// distance 4. Everything else is defaulted: DMT partitioning, the
	// {Nested-Loop, Cell-Based} candidate set, 8 reducers.
	result, err := dod.Detect(points, dod.Config{R: 4, K: 3, SampleRate: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d points\n", len(points))
	fmt.Printf("outliers (%d):\n", len(result.OutlierIDs))
	for _, oid := range result.OutlierIDs {
		p := points[oid] // IDs were assigned densely in insertion order
		fmt.Printf("  point %d at (%.1f, %.1f)\n", oid, p.Coords[0], p.Coords[1])
	}

	rep := result.Report
	fmt.Printf("\nexecution: %d MapReduce job(s), %d partitions, %d support records\n",
		rep.NumJobs, len(rep.Plan.Partitions), rep.SupportRecords)
	fmt.Printf("simulated 40-node cluster time: %v (reduce imbalance %.2f)\n",
		rep.Simulated.Total(), rep.ReduceImbalance)
}
