// Semantics example: three outlier definitions, one framework.
//
// The literature offers several formalizations of "outlier", and the
// paper's related-work section contrasts its distance-threshold semantics
// with kNN-based ranking ([10]) and LOCI's density deviations ([22]). All
// three run on this library's supporting-area MapReduce framework; this
// example applies them to the same dataset and shows where they agree and
// where the definitions genuinely differ.
//
//   - Distance-threshold (dod.Detect): "fewer than K neighbors within R" —
//     a crisp yes/no for every point.
//   - kNN top-n (dod.KNNOutliers): "the n points farthest from their k-th
//     neighbor" — a ranking, no radius parameter.
//   - LOCI (dod.LOCI): "local density far below the neighborhood's" —
//     multi-granularity, catches points inside sparse pockets of dense
//     regions that the global definitions miss.
//
// Run with: go run ./examples/semantics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dod"
)

func main() {
	rng := rand.New(rand.NewSource(12))
	var points []dod.Point
	id := uint64(0)
	add := func(x, y float64) uint64 {
		points = append(points, dod.Point{ID: id, Coords: []float64{x, y}})
		id++
		return id - 1
	}

	// A dense jittered field with a carved hole...
	for gx := 0; gx < 50; gx++ {
		for gy := 0; gy < 50; gy++ {
			x, y := float64(gx)+rng.Float64(), float64(gy)+rng.Float64()
			if dx, dy := x-25, y-25; dx*dx+dy*dy < 20 {
				continue
			}
			add(x, y)
		}
	}
	labels := map[uint64]string{}
	// ...a lone point inside the hole (a LOCI-style local anomaly: it has
	// neighbors within the global radius, just far fewer than its
	// surroundings)...
	labels[add(25, 25)] = "pocket anomaly"
	// ...and two globally isolated points.
	labels[add(80, 80)] = "global outlier A"
	labels[add(-20, 60)] = "global outlier B"

	const (
		r = 3.0
		k = 4
	)

	distRes, err := dod.Detect(points, dod.Config{R: r, K: k, SampleRate: 0.5, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	knnRes, err := dod.KNNOutliers(points, dod.KNNConfig{K: k, N: 3, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	lociRes, err := dod.LOCI(points, dod.LOCIConfig{R: 6, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	flaggedBy := map[uint64][]string{}
	for _, oid := range distRes.OutlierIDs {
		flaggedBy[oid] = append(flaggedBy[oid], "distance-threshold")
	}
	for _, o := range knnRes {
		flaggedBy[o.ID] = append(flaggedBy[o.ID], "kNN-top-n")
	}
	for _, oid := range lociRes {
		flaggedBy[oid] = append(flaggedBy[oid], "LOCI")
	}

	fmt.Printf("dataset: %d points; planted: %d\n\n", len(points), len(labels))
	fmt.Printf("distance-threshold (r=%g, k=%d): %d outliers\n", r, k, len(distRes.OutlierIDs))
	fmt.Printf("kNN top-3 (k=%d):               %d outliers\n", k, len(knnRes))
	fmt.Printf("LOCI (r=6, α=0.5, 3σ):          %d outliers\n\n", len(lociRes))

	ids := make([]uint64, 0, len(flaggedBy))
	for oid := range flaggedBy {
		ids = append(ids, oid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("point        planted-as           flagged-by")
	for _, oid := range ids {
		label := labels[oid]
		if label == "" {
			label = "-"
		}
		fmt.Printf("%-12d %-20s %v\n", oid, label, flaggedBy[oid])
	}

	// Where the definitions agree and differ:
	//
	//   - The global semantics (distance-threshold, kNN) must flag both
	//     isolated points and the pocket anomaly.
	//   - LOCI flags the pocket anomaly, but is *blind to the fully
	//     isolated points*: its MDEF compares a point's density against its
	//     sampling neighborhood, and a point with an empty neighborhood has
	//     nothing to deviate from — a well-known LOCI caveat, and exactly
	//     the kind of semantic difference that makes the choice of
	//     definition application-dependent.
	for oid := range labels {
		has := map[string]bool{}
		for _, s := range flaggedBy[oid] {
			has[s] = true
		}
		if !has["distance-threshold"] || !has["kNN-top-n"] {
			log.Fatalf("global semantics missed planted point %d: %v", oid, flaggedBy[oid])
		}
		wantLOCI := labels[oid] == "pocket anomaly"
		if has["LOCI"] != wantLOCI {
			log.Fatalf("LOCI on %s (%d): flagged=%v, want %v", labels[oid], oid, has["LOCI"], wantLOCI)
		}
	}
	fmt.Println("\ndistance-threshold and kNN agree on all planted points;")
	fmt.Println("LOCI flags the pocket anomaly but (by definition) not the isolated points")
}
