// Clustering example: the DOD framework beyond outlier detection.
//
// Sec. III-B of the paper notes that the supporting-area partitioning
// "can be easily adapted to support other mining tasks ... such as
// density-based clustering". This example runs DBSCAN both centralized and
// distributed (as a single MapReduce job over a uniSpace plan with eps
// supporting areas) on city-like point data and shows the two agree — even
// for a cluster that snakes across many partition boundaries.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dod"
)

func main() {
	rng := rand.New(rand.NewSource(6))
	var points []dod.Point
	id := uint64(0)
	add := func(x, y float64) {
		points = append(points, dod.Point{ID: id, Coords: []float64{x, y}})
		id++
	}

	// Three compact towns...
	for _, c := range [][2]float64{{20, 20}, {80, 25}, {30, 80}} {
		for i := 0; i < 400; i++ {
			add(c[0]+rng.NormFloat64()*2, c[1]+rng.NormFloat64()*2)
		}
	}
	// ...a river-side settlement snaking across the map (one cluster that
	// will cross many partition boundaries)...
	for i := 0; i < 600; i++ {
		t := float64(i) / 600 * 100
		add(t, 50+10*math.Sin(t/12)+rng.NormFloat64()*0.8)
	}
	// ...and scattered homesteads (noise).
	for i := 0; i < 15; i++ {
		add(rng.Float64()*100, rng.Float64()*100)
	}

	const (
		eps    = 2.5
		minPts = 5
	)

	central, err := dod.DBSCANCentralized(points, eps, minPts)
	if err != nil {
		log.Fatal(err)
	}
	distributed, err := dod.DBSCAN(points, dod.DBSCANConfig{
		Eps: eps, MinPts: minPts,
		NumPartitions: 36, NumReducers: 6, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	sizes := func(r *dod.DBSCANResult) (map[int]int, int) {
		bySize := map[int]int{}
		noise := 0
		for _, l := range r.Labels {
			if l == dod.DBSCANNoise {
				noise++
			} else {
				bySize[l]++
			}
		}
		return bySize, noise
	}
	cSizes, cNoise := sizes(central)
	dSizes, dNoise := sizes(distributed)

	fmt.Printf("points: %d\n", len(points))
	fmt.Printf("centralized : %d clusters, %d noise points\n", central.NumClusters, cNoise)
	fmt.Printf("distributed : %d clusters, %d noise points (36 partitions, 6 reducers)\n",
		distributed.NumClusters, dNoise)

	if central.NumClusters != distributed.NumClusters || cNoise != dNoise {
		log.Fatal("centralized and distributed clusterings disagree")
	}
	// Cluster size multisets must match.
	if !sameSizes(cSizes, dSizes) {
		log.Fatal("cluster size distributions disagree")
	}
	fmt.Println("\ncluster sizes:")
	for l := 0; l < distributed.NumClusters; l++ {
		fmt.Printf("  cluster %d: %d points\n", l, dSizes[l])
	}
	fmt.Println("\ndistributed == centralized: true")
}

func sameSizes(a, b map[int]int) bool {
	count := map[int]int{}
	for _, s := range a {
		count[s]++
	}
	for _, s := range b {
		count[s]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
