// Intrusion-detection example: spot anomalous network connections — one of
// the mission-critical applications motivating the paper's introduction.
//
// Each connection is a 3-D feature vector (log bytes sent, log bytes
// received, duration). Normal traffic concentrates around a handful of
// service profiles (web, bulk transfer, ssh); attack traffic — a port scan
// (many tiny asymmetric connections far from any profile) and a slow
// exfiltration (huge upload, long duration) — lands far from all of them.
//
// Run with: go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dod"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	var points []dod.Point
	id := uint64(0)
	add := func(coords ...float64) uint64 {
		points = append(points, dod.Point{ID: id, Coords: coords})
		id++
		return id - 1
	}

	// Normal traffic: three service profiles in (log-bytes-out,
	// log-bytes-in, duration-seconds) space.
	profiles := []struct {
		out, in, dur float64
		n            int
	}{
		{out: 8, in: 14, dur: 2, n: 5000},  // web browsing: small out, large in, short
		{out: 16, in: 9, dur: 30, n: 2000}, // bulk upload: large out, long
		{out: 10, in: 10, dur: 60, n: 800}, // interactive ssh: balanced, very long
	}
	for _, p := range profiles {
		for i := 0; i < p.n; i++ {
			add(p.out+rng.NormFloat64()*0.8,
				p.in+rng.NormFloat64()*0.8,
				p.dur+rng.NormFloat64()*4)
		}
	}

	// Attacks: a handful of connections with no nearby profile.
	attacks := map[uint64]string{}
	attacks[add(2, 0.5, 0.1)] = "port scan probe"
	attacks[add(2.2, 0.3, 0.2)] = "port scan probe"
	attacks[add(20, 1, 600)] = "slow exfiltration"
	attacks[add(19.5, 0.8, 550)] = "slow exfiltration"
	attacks[add(0.5, 18, 1)] = "amplification reply"

	// Fewer than 6 similar connections within feature distance 3 ⇒ anomaly.
	res, err := dod.Detect(points, dod.Config{
		R: 3, K: 6,
		NumReducers: 4,
		SampleRate:  0.5,
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("connections analyzed: %d\n", len(points))
	fmt.Printf("anomalies flagged: %d\n\n", len(res.OutlierIDs))
	caught := 0
	for _, oid := range res.OutlierIDs {
		label := attacks[oid]
		if label == "" {
			label = "unlabeled anomaly"
		} else {
			caught++
		}
		p := points[oid]
		fmt.Printf("  conn %5d  out=%5.1f in=%5.1f dur=%6.1fs  -> %s\n",
			oid, p.Coords[0], p.Coords[1], p.Coords[2], label)
	}
	fmt.Printf("\nplanted attacks caught: %d/%d\n", caught, len(attacks))
	if caught != len(attacks) {
		log.Fatal("missed a planted attack")
	}
}
