// Fraud-detection example: flag suspicious card transactions — another of
// the paper's motivating applications ("credit fraud prevention").
//
// Each transaction is a 2-D feature vector: log-amount and hour-of-day
// (mapped onto a circle would be better; a linear hour suffices for the
// demo). Legitimate spending follows daily routines — morning coffee, lunch,
// evening groceries, a monthly rent spike — while fraud shows up as isolated
// (amount, time) combinations like a luxury purchase at 4 am.
//
// The example also demonstrates the centralized API: for a few thousand
// transactions a single-machine detector is the right tool, and
// dod.DetectCentralized must agree with the distributed pipeline exactly.
//
// Run with: go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"
	"reflect"

	"dod"
)

func main() {
	rng := rand.New(rand.NewSource(8))
	var points []dod.Point
	id := uint64(0)
	add := func(logAmount, hour float64) uint64 {
		points = append(points, dod.Point{ID: id, Coords: []float64{logAmount, hour}})
		id++
		return id - 1
	}

	// Legitimate routines: (typical log-amount, typical hour, spread, count).
	routines := []struct {
		amt, hour, spread float64
		n                 int
	}{
		{1.5, 8, 0.4, 2500},    // morning coffee ≈ $4-5
		{2.8, 12.5, 0.6, 3000}, // lunch ≈ $15-20
		{4.2, 18, 0.8, 2500},   // groceries ≈ $60-80
		{7.2, 9, 0.3, 300},     // monthly rent ≈ $1300, morning
	}
	for _, rt := range routines {
		for i := 0; i < rt.n; i++ {
			add(rt.amt+rng.NormFloat64()*rt.spread*0.5,
				rt.hour+rng.NormFloat64()*rt.spread)
		}
	}

	// Planted fraud: isolated (amount, hour) combinations.
	fraud := map[uint64]string{}
	fraud[add(8.5, 3.9)] = "luxury purchase at 4 am"
	fraud[add(8.3, 4.2)] = "second luxury purchase at 4 am"
	fraud[add(5.0, 2.0)] = "card-testing charge at 2 am"
	fraud[add(0.2, 23.5)] = "micro-charge just before midnight"

	const (
		r = 0.8 // neighborhood radius in (log-amount, hour) space
		k = 5   // fewer than 5 similar transactions ⇒ suspicious
	)

	// Distributed detection...
	res, err := dod.Detect(points, dod.Config{R: r, K: k, SampleRate: 0.5, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	// ...must agree exactly with a single-machine run.
	centralized, err := dod.DetectCentralized(points, dod.CellBasedL2, r, k)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(res.OutlierIDs, centralized) {
		log.Fatal("distributed and centralized detection disagree")
	}

	fmt.Printf("transactions analyzed: %d\n", len(points))
	fmt.Printf("flagged as suspicious: %d\n\n", len(res.OutlierIDs))
	caught := 0
	for _, oid := range res.OutlierIDs {
		label := fraud[oid]
		if label == "" {
			label = "unusual but unlabeled"
		} else {
			caught++
		}
		p := points[oid]
		fmt.Printf("  txn %5d  log-amount=%4.1f hour=%4.1f  -> %s\n",
			oid, p.Coords[0], p.Coords[1], label)
	}
	fmt.Printf("\nplanted fraud caught: %d/%d (distributed == centralized: true)\n",
		caught, len(fraud))
	if caught != len(fraud) {
		log.Fatal("missed a planted fraud case")
	}
}
