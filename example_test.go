package dod_test

import (
	"context"
	"fmt"
	"time"

	"dod"
)

// ExampleParseDetector shows name→Detector resolution; matching ignores
// case and hyphens, so flag and config values round-trip through String.
func ExampleParseDetector() {
	det, err := dod.ParseDetector("cell-based")
	if err != nil {
		panic(err)
	}
	fmt.Println(det)

	if _, err := dod.ParseDetector("nope"); err != nil {
		fmt.Println("unknown names are rejected")
	}
	// Output:
	// Cell-Based
	// unknown names are rejected
}

// ExampleDetectContext runs the distributed pipeline under a deadline: a
// 10×10 unit grid plus one isolated point, which is the only outlier.
func ExampleDetectContext() {
	var points []dod.Point
	for i := 0; i < 100; i++ {
		points = append(points, dod.Point{
			ID:     uint64(i),
			Coords: []float64{float64(i % 10), float64(i / 10)},
		})
	}
	points = append(points, dod.Point{ID: 999, Coords: []float64{50, 50}})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := dod.DetectContext(ctx, points, dod.Config{R: 3, K: 4, SampleRate: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.OutlierIDs)
	// Output: [999]
}
