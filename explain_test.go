package dod

import (
	"sort"
	"testing"
)

// TestPartitionDetails: the explain accessor must line the plan up with
// the per-partition trace — every partition present exactly once, core
// counts covering the whole dataset, and the actual detection work
// (dist comps, outliers) adding up to the run's totals.
func TestPartitionDetails(t *testing.T) {
	pts := testDataset(1500, 5)
	res, err := Detect(pts, Config{R: 5, K: 4, SampleRate: 1, Seed: 2, Strategy: StrategyDMT})
	if err != nil {
		t.Fatal(err)
	}
	details := res.PartitionDetails()
	if len(details) == 0 {
		t.Fatal("no partition details")
	}
	if got, want := len(details), len(res.Report.Plan.Partitions); got != want {
		t.Fatalf("details for %d partitions, plan has %d", got, want)
	}
	if !sort.SliceIsSorted(details, func(i, j int) bool { return details[i].ID < details[j].ID }) {
		t.Error("details not sorted by partition ID")
	}
	var core, outliers, comps int64
	for _, d := range details {
		if d.Algo == Detector(0) {
			t.Errorf("partition %d: unspecified algo", d.ID)
		}
		if d.EstCost < 0 || d.EstCount < 0 {
			t.Errorf("partition %d: negative estimate %g/%g", d.ID, d.EstCount, d.EstCost)
		}
		core += d.Core
		outliers += d.Outliers
		comps += d.DistComps
	}
	if core != int64(len(pts)) {
		t.Errorf("core counts sum to %d, want %d", core, len(pts))
	}
	if outliers != int64(len(res.OutlierIDs)) {
		t.Errorf("partition outliers sum to %d, want %d", outliers, len(res.OutlierIDs))
	}
	if comps <= 0 || comps > res.Report.DistComps {
		t.Errorf("partition dist comps %d out of range (report total %d)", comps, res.Report.DistComps)
	}
}

// A run without a recorded plan yields no details rather than panicking.
func TestPartitionDetailsNilPlan(t *testing.T) {
	r := &Result{}
	if d := r.PartitionDetails(); d != nil {
		t.Errorf("expected nil details, got %v", d)
	}
}
