module dod

go 1.22
