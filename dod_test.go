package dod

import (
	"math/rand"
	"reflect"
	"testing"
)

// testDataset builds a clustered dataset with known isolated outliers.
func testDataset(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, 0, n+3)
	for i := 0; i < n; i++ {
		cx, cy := 20.0, 20.0
		if i%3 == 0 {
			cx, cy = 70, 65
		}
		pts = append(pts, Point{ID: uint64(i), Coords: []float64{
			cx + rng.NormFloat64()*4, cy + rng.NormFloat64()*4,
		}})
	}
	pts = append(pts,
		Point{ID: 90001, Coords: []float64{1, 95}},
		Point{ID: 90002, Coords: []float64{95, 3}},
		Point{ID: 90003, Coords: []float64{50, 99}},
	)
	return pts
}

func TestDetectFindsPlantedOutliers(t *testing.T) {
	pts := testDataset(1000, 1)
	res, err := Detect(pts, Config{R: 5, K: 4, SampleRate: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{90001, 90002, 90003} {
		if !res.IsOutlier(id) {
			t.Errorf("planted outlier %d not detected", id)
		}
	}
	if res.IsOutlier(0) {
		t.Error("cluster member 0 misclassified")
	}
}

func TestDetectMatchesCentralizedForAllStrategies(t *testing.T) {
	pts := testDataset(800, 3)
	want, err := DetectCentralized(pts, BruteForce, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []Strategy{StrategyDomain, StrategyUniSpace, StrategyDDriven, StrategyCDriven, StrategyDMT} {
		res, err := Detect(pts, Config{
			R: 5, K: 4,
			Strategy:   strategy,
			SampleRate: 1,
			Seed:       4,
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if !reflect.DeepEqual(res.OutlierIDs, want) {
			t.Errorf("%s: outliers %v, want %v", strategy, res.OutlierIDs, want)
		}
	}
}

func TestDetectCentralizedDetectors(t *testing.T) {
	pts := testDataset(500, 5)
	want, err := DetectCentralized(pts, BruteForce, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Detector{NestedLoop, CellBased, KDTree} {
		got, err := DetectCentralized(pts, d, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v disagrees with brute force", d)
		}
	}
}

func TestDetectValidation(t *testing.T) {
	pts := testDataset(10, 7)
	if _, err := Detect(pts, Config{R: 0, K: 4}); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := Detect(pts, Config{R: 5, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Detect(nil, Config{R: 5, K: 4}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Detect(pts, Config{R: 5, K: 4, Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := DetectCentralized(nil, CellBased, 5, 4); err == nil {
		t.Error("empty centralized dataset accepted")
	}
	if _, err := DetectCentralized(testDataset(5, 1), CellBased, -1, 4); err == nil {
		t.Error("negative r accepted")
	}
}

func TestDetectRejectsDuplicateIDs(t *testing.T) {
	pts := testDataset(10, 7)
	dup := append(append([]Point(nil), pts...), Point{ID: pts[3].ID, Coords: []float64{1, 2}})
	if _, err := Detect(dup, Config{R: 5, K: 4}); err == nil {
		t.Error("Detect accepted duplicate point IDs")
	}
	if _, err := DetectCentralized(dup, CellBased, 5, 4); err == nil {
		t.Error("DetectCentralized accepted duplicate point IDs")
	}
	if _, err := Detect(pts, Config{R: 5, K: 4, SampleRate: 1}); err != nil {
		t.Errorf("unique IDs rejected: %v", err)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []uint64{9, 1, 7, 7, 0, 42, 3}
	sortIDs(ids)
	want := []uint64{0, 1, 3, 7, 7, 9, 42}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("sortIDs = %v, want %v", ids, want)
	}
	sortIDs(nil) // must not panic on empty input
}

func TestResultIsOutlier(t *testing.T) {
	r := &Result{OutlierIDs: []uint64{2, 5, 9}}
	for _, id := range []uint64{2, 5, 9} {
		if !r.IsOutlier(id) {
			t.Errorf("IsOutlier(%d) = false", id)
		}
	}
	for _, id := range []uint64{0, 3, 10} {
		if r.IsOutlier(id) {
			t.Errorf("IsOutlier(%d) = true", id)
		}
	}
	empty := &Result{}
	if empty.IsOutlier(1) {
		t.Error("empty result claims outlier")
	}
}

func TestDetectReportPopulated(t *testing.T) {
	pts := testDataset(600, 9)
	res, err := Detect(pts, Config{R: 5, K: 4, SampleRate: 1, Seed: 10, NumReducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil || rep.Plan == nil {
		t.Fatal("report or plan missing")
	}
	if rep.Plan.NumReducers != 4 {
		t.Errorf("NumReducers = %d, want 4", rep.Plan.NumReducers)
	}
	if rep.ShuffleBytes == 0 || rep.Simulated.Reduce == 0 {
		t.Errorf("report metrics empty: %+v", rep)
	}
}

func TestDetectDeterministicAcrossRuns(t *testing.T) {
	pts := testDataset(700, 11)
	cfg := Config{R: 5, K: 4, SampleRate: 0.5, Seed: 12}
	a, err := Detect(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detect(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.OutlierIDs, b.OutlierIDs) {
		t.Error("same seed produced different outlier sets")
	}
}

func TestDetectWithExplicitDetectorAndCandidates(t *testing.T) {
	pts := testDataset(500, 13)
	want, _ := DetectCentralized(pts, BruteForce, 5, 4)
	res, err := Detect(pts, Config{
		R: 5, K: 4,
		Strategy:   StrategyCDriven,
		Detector:   NestedLoop,
		SampleRate: 1,
		Seed:       14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.OutlierIDs, want) {
		t.Error("CDriven+NestedLoop mismatch")
	}
	res, err = Detect(pts, Config{
		R: 5, K: 4,
		Candidates: []Detector{NestedLoop, CellBased, KDTree},
		SampleRate: 1,
		Seed:       15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.OutlierIDs, want) {
		t.Error("extended candidate set mismatch")
	}
}
