package dod

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrEmptyDataset(t *testing.T) {
	_, err := Detect(nil, Config{R: 5, K: 4})
	if !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("Detect(nil) = %v, want ErrEmptyDataset", err)
	}
	if _, err := DetectCentralized(nil, CellBased, 5, 4); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("DetectCentralized(nil) = %v, want ErrEmptyDataset", err)
	}
}

func TestErrDuplicateID(t *testing.T) {
	pts := []Point{
		{ID: 7, Coords: []float64{0, 0}},
		{ID: 7, Coords: []float64{1, 1}},
	}
	_, err := Detect(pts, Config{R: 5, K: 4})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
	var dup *DuplicateIDError
	if !errors.As(err, &dup) {
		t.Fatalf("err = %v, want *DuplicateIDError", err)
	}
	if dup.ID != 7 {
		t.Errorf("DuplicateIDError.ID = %d, want 7", dup.ID)
	}
}

func TestErrBadParams(t *testing.T) {
	pts := testDataset(100, 1)
	cases := map[string]error{}
	_, cases["zero r"] = Detect(pts, Config{R: 0, K: 4})
	_, cases["negative r"] = Detect(pts, Config{R: -1, K: 4})
	_, cases["zero k"] = Detect(pts, Config{R: 5, K: 0})
	_, cases["unknown detector"] = ParseDetector("nope")
	_, cases["unknown strategy"] = ParseStrategy("nope")
	_, cases["bad stream config"] = NewStreamDetector(StreamConfig{R: 5, K: 4, Dim: 2})
	for name, err := range cases {
		if !errors.Is(err, ErrBadParams) {
			t.Errorf("%s: err = %v, want ErrBadParams", name, err)
		}
	}
}

// TestClusterSentinelsExported pins the distributed-runtime sentinels to
// the public API: wrapped internal errors must satisfy errors.Is against
// the dod.Err* re-exports.
func TestClusterSentinelsExported(t *testing.T) {
	if ErrWorkerLost == nil || ErrJobAborted == nil {
		t.Fatal("cluster sentinels are nil")
	}
	if errors.Is(ErrWorkerLost, ErrJobAborted) {
		t.Error("ErrWorkerLost and ErrJobAborted must be distinct")
	}
	wrapped := fmt.Errorf("dist: map task 3: %w after 8 dispatches", ErrWorkerLost)
	if !errors.Is(wrapped, ErrWorkerLost) {
		t.Errorf("wrapped worker-lost error not matched: %v", wrapped)
	}
}

func TestStreamErrDimMismatch(t *testing.T) {
	d, err := NewStreamDetector(StreamConfig{R: 5, K: 4, Dim: 2, WindowCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_, err = d.Process(Point{ID: 1, Coords: []float64{1, 2, 3}})
	if !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v, want ErrDimMismatch", err)
	}
	var dim *DimMismatchError
	if !errors.As(err, &dim) {
		t.Fatalf("err = %v, want *DimMismatchError", err)
	}
	if dim.ID != 1 || dim.Got != 3 || dim.Want != 2 {
		t.Errorf("DimMismatchError = %+v, want {ID:1 Got:3 Want:2}", dim)
	}
	if _, err := d.Score(Point{ID: 2, Coords: []float64{1}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Score err = %v, want ErrDimMismatch", err)
	}
}

func TestStreamErrDuplicateID(t *testing.T) {
	d, err := NewStreamDetector(StreamConfig{R: 5, K: 4, Dim: 2, WindowCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Process(Point{ID: 3, Coords: []float64{0, 0}}); err != nil {
		t.Fatal(err)
	}
	_, err = d.Process(Point{ID: 3, Coords: []float64{1, 1}})
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
	var dup *DuplicateIDError
	if !errors.As(err, &dup) || dup.ID != 3 {
		t.Fatalf("err = %v, want *DuplicateIDError with ID 3", err)
	}
}

func TestStreamDetectorClose(t *testing.T) {
	d, err := NewStreamDetector(StreamConfig{R: 5, K: 4, Dim: 2, WindowCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Process(Point{ID: 1, Coords: []float64{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := d.Process(Point{ID: 2, Coords: []float64{1, 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Process after Close = %v, want ErrClosed", err)
	}
	if _, err := d.Score(Point{ID: 2, Coords: []float64{1, 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Score after Close = %v, want ErrClosed", err)
	}
	// Inspection still works on a closed detector.
	if snap := d.Snapshot(); len(snap.Points) != 1 {
		t.Errorf("Snapshot after Close: %d points, want 1", len(snap.Points))
	}
	if st := d.Stats(); st.Ingested != 1 {
		t.Errorf("Stats after Close: Ingested = %d, want 1", st.Ingested)
	}
}
