package dod

import (
	"time"

	"dod/internal/stream"
)

// StreamConfig parameterizes an online (sliding-window) detector. R, K and
// Dim are required, plus at least one of WindowCapacity and WindowTTL.
type StreamConfig struct {
	// R is the neighbor distance threshold (Def. 2.1).
	R float64
	// K is the neighbor-count threshold: a window point is an outlier
	// iff it currently has fewer than K neighbors within R.
	K int
	// Dim is the point dimensionality; every processed and scored point
	// must match.
	Dim int
	// WindowCapacity bounds the window point count; ingesting past it
	// evicts the oldest point. Zero means no count bound.
	WindowCapacity int
	// WindowTTL bounds point age; points older than the TTL relative to
	// the newest ingest are evicted. Zero means no time bound.
	WindowTTL time.Duration
	// Shards is the incremental index's lock-stripe count; zero picks a
	// default. Concurrent scoring throughput scales with shards.
	Shards int
}

// StreamVerdict is the outcome of ingesting one point: its monotonic
// sequence number, exact neighbor count at admission, and outlier status.
type StreamVerdict = stream.Verdict

// StreamScore is the outcome of a read-only query against the window.
type StreamScore = stream.Score

// StreamStats is a snapshot of the window counters.
type StreamStats = stream.Stats

// StreamSnapshot is a consistent capture of the window contents and the
// current outlier IDs.
type StreamSnapshot = stream.Snapshot

// StreamDetector is the online counterpart of Detect: instead of scanning
// a finite dataset, it maintains a sliding window over an unbounded stream
// with every resident point's verdict kept current incrementally. At any
// instant the window's outliers are exactly what DetectCentralized would
// report on the same contents.
//
// All methods are safe for concurrent use. Process is serialized
// internally; Score runs lock-free over the sharded index, so read
// throughput scales with StreamConfig.Shards.
//
// cmd/dodserve wraps a StreamDetector in an NDJSON HTTP service; this type
// is the same engine for in-process use.
type StreamDetector struct {
	win *stream.Window
}

// NewStreamDetector builds an empty online detector.
func NewStreamDetector(cfg StreamConfig) (*StreamDetector, error) {
	win, err := stream.NewWindow(stream.Config{
		R:        cfg.R,
		K:        cfg.K,
		Dim:      cfg.Dim,
		Capacity: cfg.WindowCapacity,
		TTL:      cfg.WindowTTL,
		Shards:   cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	return &StreamDetector{win: win}, nil
}

// Process ingests p with arrival time time.Now() and returns its verdict.
func (d *StreamDetector) Process(p Point) (StreamVerdict, error) {
	return d.win.Process(p, time.Now())
}

// ProcessAt ingests p with an explicit arrival time — for replaying
// recorded streams whose event times drive the TTL, and for deterministic
// tests. Arrival times must be non-decreasing for TTL semantics to hold.
func (d *StreamDetector) ProcessAt(p Point, now time.Time) (StreamVerdict, error) {
	return d.win.Process(p, now)
}

// Score judges a query point against the current window without ingesting
// it: would p be an outlier among the resident points?
func (d *StreamDetector) Score(p Point) (StreamScore, error) {
	return d.win.ScorePoint(p)
}

// ProcessBatch ingests pts in order under one lock acquisition and one
// shared arrival timestamp (time.Now() at the call), amortizing the
// per-point synchronization cost. Verdicts, sequence numbers, flips and
// evictions are bit-identical to calling Process on each point at that
// instant, for any way of splitting a stream into batches.
//
// Failures are per item, not fail-fast: see BatchResult for the partial-
// failure contract.
func (d *StreamDetector) ProcessBatch(pts []Point) *BatchResult {
	return d.ProcessBatchAt(pts, time.Now())
}

// ProcessBatchAt is ProcessBatch with an explicit shared arrival time —
// for replaying recorded streams and for deterministic tests. Arrival
// times must be non-decreasing across calls for TTL semantics to hold.
func (d *StreamDetector) ProcessBatchAt(pts []Point, now time.Time) *BatchResult {
	verdicts, errs := d.win.ProcessBatch(pts, now)
	return &BatchResult{Verdicts: verdicts, Errs: errs}
}

// ScoreBatch judges pts against the current window without ingesting them,
// spreading the queries over up to GOMAXPROCS goroutines. Like Score it
// takes no window lock, so read throughput scales with StreamConfig.Shards;
// each result is identical to a Score call on the same point. Failures are
// per item: see BatchResult.
func (d *StreamDetector) ScoreBatch(pts []Point) *BatchResult {
	scores, errs := d.win.ScoreBatch(pts, 0)
	return &BatchResult{Scores: scores, Errs: errs}
}

// EvictExpired drains points older than the TTL horizon relative to now
// and reports how many were evicted. Process does this implicitly; call it
// directly to age out an idle window.
func (d *StreamDetector) EvictExpired(now time.Time) int {
	return d.win.EvictExpired(now)
}

// Snapshot atomically captures the resident points (arrival order) and the
// current outlier IDs (ascending).
func (d *StreamDetector) Snapshot() StreamSnapshot { return d.win.Snapshot() }

// Stats returns the window counters and per-shard index occupancy.
func (d *StreamDetector) Stats() StreamStats { return d.win.Stats() }

// Close marks the detector closed: subsequent Process, ProcessAt and Score
// calls fail with an error matching ErrClosed. Snapshot and Stats keep
// working, so a drained detector can still be inspected. Close is
// idempotent and safe to call concurrently with other methods.
func (d *StreamDetector) Close() error { return d.win.Close() }
