package dod

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Sec. VI) plus ablations for the design choices DESIGN.md
// calls out. Each figure benchmark regenerates the corresponding workload
// sweep; the reported custom metrics are the figure's y-values (simulated
// cluster seconds), so `go test -bench` output doubles as the data behind
// EXPERIMENTS.md. Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-iteration wall time of a figure benchmark is the cost of
// regenerating that figure at bench scale, not a paper quantity.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dod/internal/binpack"
	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/dshc"
	"dod/internal/experiments"
	"dod/internal/geom"
	"dod/internal/plan"
	"dod/internal/sample"
	"dod/internal/synth"
)

// benchConfig keeps figure regeneration fast enough for -bench=. while
// preserving the density/skew structure. EXPERIMENTS.md uses cmd/dodbench
// at larger scale.
func benchConfig() experiments.Config {
	return experiments.Config{
		SegmentN: 8000,
		BaseN:    2000,
		SweepN:   6000,
		Reducers: 8,
		Seed:     1,
	}
}

// reportFigure exposes every (series, x) cell of a figure as a benchmark
// metric.
func reportFigure(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("%s@%s_simsec", sanitize(s.Label), sanitize(p.X)))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '+', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func benchFigure(b *testing.B, run func(experiments.Config) (*experiments.Figure, error)) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// BenchmarkFig4_NestedLoopDensitySensitivity regenerates Fig. 4: Nested-
// Loop on equal-cardinality sparse vs dense uniform data (paper: ≈4.5×).
func BenchmarkFig4_NestedLoopDensitySensitivity(b *testing.B) {
	benchFigure(b, experiments.Fig4)
}

// BenchmarkFig5_DetectorDensitySweep regenerates Fig. 5: Cell-Based vs
// Nested-Loop across densities 0.01–100.
func BenchmarkFig5_DetectorDensitySweep(b *testing.B) {
	benchFigure(b, experiments.Fig5)
}

// BenchmarkFig7a_PartitioningEffectivenessNL regenerates Fig. 7a:
// partitioning strategies relative to CDriven under Nested-Loop.
func BenchmarkFig7a_PartitioningEffectivenessNL(b *testing.B) {
	benchFigure(b, experiments.Fig7a)
}

// BenchmarkFig7b_PartitioningEffectivenessCB regenerates Fig. 7b: the same
// under Cell-Based.
func BenchmarkFig7b_PartitioningEffectivenessCB(b *testing.B) {
	benchFigure(b, experiments.Fig7b)
}

// BenchmarkFig8a_PartitioningScalabilityNL regenerates Fig. 8a: MA→Planet
// scalability under Nested-Loop.
func BenchmarkFig8a_PartitioningScalabilityNL(b *testing.B) {
	benchFigure(b, experiments.Fig8a)
}

// BenchmarkFig8b_PartitioningScalabilityCB regenerates Fig. 8b: the same
// under Cell-Based.
func BenchmarkFig8b_PartitioningScalabilityCB(b *testing.B) {
	benchFigure(b, experiments.Fig8b)
}

// BenchmarkFig9a_DetectionMethodsByDistribution regenerates Fig. 9a:
// CDriven+NL vs CDriven+CB vs DMT on the four segments.
func BenchmarkFig9a_DetectionMethodsByDistribution(b *testing.B) {
	benchFigure(b, experiments.Fig9a)
}

// BenchmarkFig9b_DetectionMethodsScalability regenerates Fig. 9b: the same
// on MA→Planet.
func BenchmarkFig9b_DetectionMethodsScalability(b *testing.B) {
	benchFigure(b, experiments.Fig9b)
}

// BenchmarkFig10a_BreakdownDistorted regenerates Fig. 10a: stage breakdown
// on the distorted (terabyte-analog) dataset.
func BenchmarkFig10a_BreakdownDistorted(b *testing.B) {
	benchFigure(b, experiments.Fig10a)
}

// BenchmarkFig10b_BreakdownTiger regenerates Fig. 10b: stage breakdown on
// the TIGER analog.
func BenchmarkFig10b_BreakdownTiger(b *testing.B) {
	benchFigure(b, experiments.Fig10b)
}

// ---------------------------------------------------------------------------
// Detector micro-benchmarks: raw centralized detector throughput on one
// segment (useful for profiling, and the data behind the Sec. IV claims).

func BenchmarkDetector(b *testing.B) {
	pts := synth.Segment(synth.Massachusetts, 8000, 3)
	params := detect.Params{R: 5, K: 4}
	for _, kind := range []detect.Kind{detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree} {
		b.Run(sanitize(kind.String()), func(b *testing.B) {
			var comps int64
			for i := 0; i < b.N; i++ {
				res := detect.New(kind, 7).Detect(pts, nil, params)
				comps = res.Stats.Cost()
			}
			b.ReportMetric(float64(comps), "workunits")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: supporting area Def. 3.3 (rectangular expansion) vs the exact
// Def. 3.2 region — replication volume vs mapping cost.

func BenchmarkAblationSupportArea(b *testing.B) {
	pts := synth.Segment(synth.NewYork, 10000, 5)
	for _, exact := range []bool{false, true} {
		name := "Def3.3_rectExpansion"
		if exact {
			name = "Def3.2_exact"
		}
		b.Run(name, func(b *testing.B) {
			var supp int64
			for i := 0; i < b.N; i++ {
				input, err := core.InputFromPoints(pts, 4096)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := core.Run(context.Background(), input, core.Config{
					Params:  detect.Params{R: 5, K: 4},
					Planner: plan.UniSpace,
					PlanOpts: plan.Options{
						NumReducers: 8, NumPartitions: 32,
						Detector: detect.CellBased, ExactSupport: exact,
					},
					SampleRate: 1, Seed: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				supp = rep.SupportRecords
			}
			b.ReportMetric(float64(supp), "support_records")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: allocation algorithm (DMT Step 3) — LPT vs Karmarkar–Karp vs
// round-robin on a skewed partition cost set.

func BenchmarkAblationAllocator(b *testing.B) {
	pts := synth.Segment(synth.Massachusetts, 12000, 7)
	hist, err := sample.FromPoints(sample.Config{
		Domain:        boundsOf(pts),
		BucketsPerDim: 24,
		Rate:          1,
		Seed:          3,
	}, pts)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := plan.DMT.Build(hist, plan.Options{NumReducers: 8, Params: detect.Params{R: 5, K: 4}})
	if err != nil {
		b.Fatal(err)
	}
	items := make([]binpack.Item, len(pl.Partitions))
	for i, p := range pl.Partitions {
		items[i] = binpack.Item{ID: p.ID, Weight: p.EstCost}
	}
	allocators := []struct {
		name string
		fn   func([]binpack.Item, int) *binpack.Assignment
	}{
		{"LPT", binpack.LPT},
		{"KarmarkarKarp", binpack.KarmarkarKarp},
		{"RoundRobin", binpack.RoundRobin},
	}
	for _, a := range allocators {
		b.Run(a.name, func(b *testing.B) {
			var load float64
			for i := 0; i < b.N; i++ {
				load = a.fn(items, 8).MaxLoad()
			}
			b.ReportMetric(load, "max_reducer_cost")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: DSHC density-similarity criterion — regime classes (the
// default) vs absolute Tdiff thresholds (the paper's Def. 5.2 verbatim).

func BenchmarkAblationTdiff(b *testing.B) {
	pts := synth.Segment(synth.Massachusetts, 12000, 9)
	params := detect.Params{R: 5, K: 4}
	hist, err := sample.FromPoints(sample.Config{
		Domain:        boundsOf(pts),
		BucketsPerDim: 22,
		Rate:          1,
		Seed:          4,
	}, pts)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		dshc dshc.Params
	}{
		{"regimeClasses", dshc.Params{}}, // planner default
		{"absolute_0.05", dshc.Params{Tdiff: 0.05}},
		{"absolute_0.5", dshc.Params{Tdiff: 0.5}},
		{"absolute_5", dshc.Params{Tdiff: 5}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var parts, maxCost float64
			for i := 0; i < b.N; i++ {
				pl, err := plan.DMT.Build(hist, plan.Options{
					NumReducers: 8, Params: params, DSHC: tc.dshc,
				})
				if err != nil {
					b.Fatal(err)
				}
				parts = float64(len(pl.Partitions))
				maxCost = pl.MaxEstCost()
			}
			b.ReportMetric(parts, "partitions")
			b.ReportMetric(maxCost, "max_reducer_cost")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: sampling rate Υ — plan quality (simulated reduce makespan of
// the detection job) versus preprocessing cost.

func BenchmarkAblationSampleRate(b *testing.B) {
	pts := synth.Segment(synth.Massachusetts, 12000, 11)
	for _, rate := range []float64{0.01, 0.05, 0.2, 1.0} {
		b.Run(fmt.Sprintf("rate_%g", rate), func(b *testing.B) {
			var reduceSec, preSec float64
			for i := 0; i < b.N; i++ {
				input, err := core.InputFromPoints(pts, 4096)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := core.Run(context.Background(), input, core.Config{
					Params:     detect.Params{R: 5, K: 4},
					Planner:    plan.DMT,
					PlanOpts:   plan.Options{NumReducers: 8},
					SampleRate: rate,
					Seed:       5,
				})
				if err != nil {
					b.Fatal(err)
				}
				reduceSec = rep.Simulated.Reduce.Seconds()
				preSec = rep.Simulated.Preprocess.Seconds()
			}
			b.ReportMetric(reduceSec, "reduce_simsec")
			b.ReportMetric(preSec, "preprocess_simsec")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: the paper's Cell-Based (full-pool fallback, Lemma 4.2) vs the
// CellBasedL2 extension (L1-seeded ring scan) across the density regimes.

func BenchmarkAblationCellBasedVariants(b *testing.B) {
	params := detect.Params{R: 5, K: 4}
	for _, density := range []float64{0.01, 0.06, 1.0} {
		pts := synth.JitteredGrid(6000, density, 13)
		for _, kind := range []detect.Kind{detect.CellBased, detect.CellBasedL2} {
			b.Run(fmt.Sprintf("density_%g/%s", density, sanitize(kind.String())), func(b *testing.B) {
				var work int64
				for i := 0; i < b.N; i++ {
					work = detect.New(kind, 7).Detect(pts, nil, params).Stats.Cost()
				}
				b.ReportMetric(float64(work), "workunits")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation: DMT's algorithm candidate set A — the paper's {NL, CB} versus
// extended sets including the beyond-paper detectors.

func BenchmarkAblationCandidateSet(b *testing.B) {
	pts := synth.Segment(synth.Massachusetts, 12000, 15)
	sets := []struct {
		name       string
		candidates []detect.Kind
	}{
		{"paper_NL_CB", []detect.Kind{detect.NestedLoop, detect.CellBased}},
		{"with_CellBasedL2", []detect.Kind{detect.NestedLoop, detect.CellBased, detect.CellBasedL2}},
		{"with_KDTree", []detect.Kind{detect.NestedLoop, detect.CellBased, detect.KDTree}},
		{"all_five", []detect.Kind{detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree, detect.Pivot}},
	}
	for _, set := range sets {
		b.Run(set.name, func(b *testing.B) {
			var reduceSec float64
			var comps int64
			for i := 0; i < b.N; i++ {
				input, err := core.InputFromPoints(pts, 4096)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := core.Run(context.Background(), input, core.Config{
					Params:  detect.Params{R: 5, K: 4},
					Planner: plan.DMT,
					PlanOpts: plan.Options{
						NumReducers: 8,
						Candidates:  set.candidates,
					},
					SampleRate: 1, Seed: 6,
				})
				if err != nil {
					b.Fatal(err)
				}
				reduceSec = rep.Simulated.Reduce.Seconds()
				comps = rep.DistComps
			}
			b.ReportMetric(reduceSec, "reduce_simsec")
			b.ReportMetric(float64(comps), "distcomps")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: DMT versus the exhaustive optimum of Def. 3.5 on tiny
// instances where the exponential search is feasible — how much does the
// heuristic leave on the table?

func BenchmarkAblationDMTvsOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	domain := Rect{Min: []float64{0, 0}, Max: []float64{30, 30}}
	dims := []int{3, 3}
	grid := geom.NewGrid(domain, dims)
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for i := range h.Counts {
		h.Counts[i] = float64(rng.Intn(500))
	}
	opts := plan.Options{NumReducers: 2, NumPartitions: 9, Params: detect.Params{R: 5, K: 4}}
	b.Run("Exhaustive", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			pl, err := plan.Exhaustive(h, opts)
			if err != nil {
				b.Fatal(err)
			}
			cost = pl.MaxEstCost()
		}
		b.ReportMetric(cost, "max_reducer_cost")
	})
	b.Run("DMT", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			pl, err := plan.DMT.Build(h, opts)
			if err != nil {
				b.Fatal(err)
			}
			cost = pl.MaxEstCost()
		}
		b.ReportMetric(cost, "max_reducer_cost")
	})
}

// ---------------------------------------------------------------------------
// Extension: detector scaling with dimensionality. The paper evaluates in
// two dimensions; every detector here generalizes to d dimensions, and this
// benchmark tracks how their work grows as d rises (the Cell-Based blocks
// grow as 3^d/7^d, the kd-tree degrades gracefully).

func BenchmarkDimensionality(b *testing.B) {
	params := detect.Params{R: 5, K: 4}
	for _, d := range []int{2, 3, 4} {
		pts := gaussianCloudD(4000, d, 17)
		for _, kind := range []detect.Kind{detect.NestedLoop, detect.CellBased, detect.KDTree} {
			b.Run(fmt.Sprintf("d%d/%s", d, sanitize(kind.String())), func(b *testing.B) {
				var work int64
				for i := 0; i < b.N; i++ {
					work = detect.New(kind, 7).Detect(pts, nil, params).Stats.Cost()
				}
				b.ReportMetric(float64(work), "workunits")
			})
		}
	}
}

// gaussianCloudD builds an n-point d-dimensional Gaussian cloud scaled so
// the average density stays in the intermediate regime.
func gaussianCloudD(n, d int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		coords := make([]float64, d)
		for j := range coords {
			coords[j] = rng.NormFloat64() * 20
		}
		pts[i] = Point{ID: uint64(i), Coords: coords}
	}
	return pts
}

// boundsOf is a small helper around geom.Bounds for bench setup.
func boundsOf(pts []Point) Rect {
	min := append([]float64(nil), pts[0].Coords...)
	max := append([]float64(nil), pts[0].Coords...)
	for _, p := range pts[1:] {
		for i, v := range p.Coords {
			if v < min[i] {
				min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
		}
	}
	return Rect{Min: min, Max: max}
}
